//! Coordinate-wise median [Yin et al., ICML 2018].

use super::{coordinate_shard, fill_coordinate, Aggregator, COORD_SHARD};
use crate::update::ClientUpdate;
use collapois_nn::kernels;
use collapois_runtime::pool::{WorkerArenas, WorkerPool};
use rand::rngs::StdRng;

/// Element-wise median of the round's deltas.
///
/// Each coordinate is gathered into a reusable scratch buffer and reduced
/// by [`kernels::median_inplace`] (partial select instead of a full sort;
/// even lengths interpolate the two middle order statistics in `f64`,
/// matching `collapois_stats::descriptive::median`). The pooled path
/// shards the coordinate loop into fixed-width column blocks with per-lane
/// gather buffers — bitwise exact because coordinates are independent.
#[derive(Debug, Default)]
pub struct CoordinateMedian {
    scratch: Vec<f32>,
    /// Per-lane gather buffers for the sharded path.
    arenas: WorkerArenas<Vec<f32>>,
}

impl CoordinateMedian {
    /// Creates the aggregator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Aggregator for CoordinateMedian {
    fn name(&self) -> &'static str {
        "median"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, rng: &mut StdRng) -> Vec<f32> {
        let mut out = vec![0.0f32; dim];
        self.aggregate_into(updates, &mut out, rng);
        out
    }

    fn aggregate_into(&mut self, updates: &[ClientUpdate], out: &mut [f32], _rng: &mut StdRng) {
        if updates.is_empty() {
            out.fill(0.0);
            return;
        }
        for (c, slot) in out.iter_mut().enumerate() {
            fill_coordinate(updates, c, &mut self.scratch);
            *slot = kernels::median_inplace(&mut self.scratch);
        }
    }

    fn aggregate_pooled(
        &mut self,
        updates: &[ClientUpdate],
        out: &mut [f32],
        _rng: &mut StdRng,
        pool: &WorkerPool,
    ) {
        if updates.is_empty() {
            out.fill(0.0);
            return;
        }
        pool.for_chunks_mut_with_arena(
            &mut self.arenas,
            out,
            COORD_SHARD,
            Vec::new,
            |shard, chunk, scratch| {
                coordinate_shard(updates, shard, chunk, scratch, |buf| {
                    kernels::median_inplace(buf)
                });
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn median_resists_single_outlier() {
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0], &[2.0], &[1000.0]]);
        assert_eq!(agg.aggregate(&us, 1, &mut rng), vec![2.0]);
    }

    #[test]
    fn bounded_by_min_max_per_coordinate() {
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0, -4.0], &[3.0, 0.0], &[2.0, -2.0], &[5.0, 1.0]]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(out[0] >= 1.0 && out[0] <= 5.0);
        assert!(out[1] >= -4.0 && out[1] <= 1.0);
    }

    #[test]
    fn even_count_interpolates_middle_pair() {
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0], &[4.0], &[2.0], &[3.0]]);
        assert_eq!(agg.aggregate(&us, 1, &mut rng), vec![2.5]);
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 2, &mut rng), vec![0.0; 2]);
    }

    #[test]
    fn pooled_shards_match_serial_bitwise() {
        let dim = 520;
        let us: Vec<ClientUpdate> = (0..9)
            .map(|i| {
                let delta: Vec<f32> = (0..dim).map(|j| ((i * 7 + j) as f32).cos()).collect();
                ClientUpdate::new(i, delta, 10)
            })
            .collect();
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        let serial = agg.aggregate(&us, dim, &mut rng);
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let mut out = vec![0.0f32; dim];
            agg.aggregate_pooled(&us, &mut out, &mut rng, &pool);
            let a: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "workers={workers}");
        }
    }
}
