//! Coordinate-wise median [Yin et al., ICML 2018].

use super::{fill_coordinate, Aggregator};
use crate::update::ClientUpdate;
use collapois_nn::kernels;
use rand::rngs::StdRng;

/// Element-wise median of the round's deltas.
///
/// Each coordinate is gathered into a reusable scratch buffer and reduced
/// by [`kernels::median_inplace`] (partial select instead of a full sort;
/// even lengths interpolate the two middle order statistics in `f64`,
/// matching `collapois_stats::descriptive::median`).
#[derive(Debug, Clone, Default)]
pub struct CoordinateMedian {
    scratch: Vec<f32>,
}

impl CoordinateMedian {
    /// Creates the aggregator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Aggregator for CoordinateMedian {
    fn name(&self) -> &'static str {
        "median"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, _rng: &mut StdRng) -> Vec<f32> {
        if updates.is_empty() {
            return vec![0.0; dim];
        }
        (0..dim)
            .map(|c| {
                fill_coordinate(updates, c, &mut self.scratch);
                kernels::median_inplace(&mut self.scratch)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn median_resists_single_outlier() {
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0], &[2.0], &[1000.0]]);
        assert_eq!(agg.aggregate(&us, 1, &mut rng), vec![2.0]);
    }

    #[test]
    fn bounded_by_min_max_per_coordinate() {
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0, -4.0], &[3.0, 0.0], &[2.0, -2.0], &[5.0, 1.0]]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(out[0] >= 1.0 && out[0] <= 5.0);
        assert!(out[1] >= -4.0 && out[1] <= 1.0);
    }

    #[test]
    fn even_count_interpolates_middle_pair() {
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0], &[4.0], &[2.0], &[3.0]]);
        assert_eq!(agg.aggregate(&us, 1, &mut rng), vec![2.5]);
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 2, &mut rng), vec![0.0; 2]);
    }
}
