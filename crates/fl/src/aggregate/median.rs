//! Coordinate-wise median [Yin et al., ICML 2018].

use super::{coordinate_values, Aggregator};
use crate::update::ClientUpdate;
use collapois_stats::descriptive::median;
use rand::rngs::StdRng;

/// Element-wise median of the round's deltas.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordinateMedian;

impl CoordinateMedian {
    /// Creates the aggregator.
    pub fn new() -> Self {
        Self
    }
}

impl Aggregator for CoordinateMedian {
    fn name(&self) -> &'static str {
        "median"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, _rng: &mut StdRng) -> Vec<f32> {
        if updates.is_empty() {
            return vec![0.0; dim];
        }
        (0..dim)
            .map(|c| {
                let vals: Vec<f64> = coordinate_values(updates, c)
                    .into_iter()
                    .map(f64::from)
                    .collect();
                median(&vals) as f32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn median_resists_single_outlier() {
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0], &[2.0], &[1000.0]]);
        assert_eq!(agg.aggregate(&us, 1, &mut rng), vec![2.0]);
    }

    #[test]
    fn bounded_by_min_max_per_coordinate() {
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0, -4.0], &[3.0, 0.0], &[2.0, -2.0], &[5.0, 1.0]]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(out[0] >= 1.0 && out[0] <= 5.0);
        assert!(out[1] >= -4.0 && out[1] <= 1.0);
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = CoordinateMedian::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 2, &mut rng), vec![0.0; 2]);
    }
}
