//! Statistical-screening aggregation in the spirit of MESAS
//! [Krauß & Dmitrienko, CCS 2023].
//!
//! The server extracts simple per-update features — l2 magnitude and cosine
//! to the cohort mean — and excludes updates whose features are 3σ outliers
//! against the cohort before averaging the rest. This is the
//! "poisoned update detection by statistical tests" defense category the
//! paper claims CollaPois bypasses (§IV-D): with a suitable ψ range and a
//! clipping bound, malicious updates fall inside the benign feature band,
//! while naive boosted attacks (MRepl) are filtered out.

use super::Aggregator;
use crate::update::{mean_delta, ClientUpdate};
use collapois_stats::descriptive::median;
use collapois_stats::geometry::{cosine_similarity, l2_norm};
use rand::rngs::StdRng;

/// 3σ feature screening + FedAvg over the surviving updates.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatFilter {
    /// Updates excluded across the aggregator's lifetime (for reporting).
    excluded_total: usize,
}

impl StatFilter {
    /// Creates the aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many updates have been excluded so far.
    pub fn excluded_total(&self) -> usize {
        self.excluded_total
    }

    /// Indices of updates flagged by the robust 3σ rule (median ± 3·1.4826·MAD,
    /// the MAD-consistent estimate of σ — immune to the masking effect a
    /// boosted update has on the plain mean/std) on magnitude or direction.
    pub fn flagged(updates: &[ClientUpdate], dim: usize) -> Vec<usize> {
        if updates.len() < 3 {
            return Vec::new();
        }
        let mean = mean_delta(updates, dim);
        let norms: Vec<f64> = updates.iter().map(|u| l2_norm(&u.delta)).collect();
        let cosines: Vec<f64> = updates
            .iter()
            .map(|u| cosine_similarity(&u.delta, &mean).unwrap_or(0.0))
            .collect();
        let mut flagged = robust_three_sigma(&norms);
        flagged.extend(robust_three_sigma(&cosines));
        flagged.sort_unstable();
        flagged.dedup();
        flagged
    }
}

/// Indices whose value deviates from the median by more than
/// `3 · 1.4826 · MAD`.
fn robust_three_sigma(values: &[f64]) -> Vec<usize> {
    let med = median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    let mad = median(&deviations);
    if mad <= f64::EPSILON {
        // Degenerate spread: fall back to flagging nothing (a constant
        // cohort has no outliers by this rule).
        return Vec::new();
    }
    let sigma = 1.4826 * mad;
    values
        .iter()
        .enumerate()
        .filter(|(_, &v)| (v - med).abs() > 3.0 * sigma)
        .map(|(i, _)| i)
        .collect()
}

impl Aggregator for StatFilter {
    fn name(&self) -> &'static str {
        "stat-filter"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, _rng: &mut StdRng) -> Vec<f32> {
        let flagged = Self::flagged(updates, dim);
        self.excluded_total += flagged.len();
        let kept: Vec<ClientUpdate> = updates
            .iter()
            .enumerate()
            .filter(|(i, _)| !flagged.contains(i))
            .map(|(_, u)| u.clone())
            .collect();
        if kept.is_empty() {
            return vec![0.0; dim];
        }
        mean_delta(&kept, dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn filters_magnitude_outlier() {
        let mut agg = StatFilter::new();
        let mut rng = StdRng::seed_from_u64(0);
        // 7 benign-ish updates and one boosted outlier.
        let benign: Vec<Vec<f32>> = (0..7).map(|i| vec![0.1 + 0.01 * i as f32, 0.1]).collect();
        let mut all: Vec<&[f32]> = benign.iter().map(|v| v.as_slice()).collect();
        let boosted = vec![500.0f32, 500.0];
        all.push(&boosted);
        let us = updates(&all);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(out[0] < 1.0, "boosted update must be filtered: {out:?}");
        assert_eq!(agg.excluded_total(), 1);
    }

    #[test]
    fn passes_homogeneous_updates() {
        let mut agg = StatFilter::new();
        let mut rng = StdRng::seed_from_u64(1);
        let vs: Vec<Vec<f32>> = (0..6).map(|i| vec![0.1 * (i % 3) as f32, 0.2]).collect();
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let us = updates(&refs);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert_eq!(agg.excluded_total(), 0);
        assert!(out[1] > 0.0);
    }

    #[test]
    fn tiny_cohorts_are_not_screened() {
        let mut agg = StatFilter::new();
        let mut rng = StdRng::seed_from_u64(2);
        let us = updates(&[&[1000.0f32], &[0.1]]);
        let out = agg.aggregate(&us, 1, &mut rng);
        // With < 3 updates there is no statistics to screen against.
        assert!(out[0] > 100.0);
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = StatFilter::new();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(agg.aggregate(&[], 3, &mut rng), vec![0.0; 3]);
    }
}
