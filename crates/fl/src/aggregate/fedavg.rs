//! FedAvg: plain uniform averaging (Eq. 2 of the paper).

use super::Aggregator;
use crate::update::{mean_delta_into, ClientUpdate};
use rand::rngs::StdRng;

/// Uniform mean of the round's deltas — the paper's Eq. 2 baseline
/// aggregation, vulnerable by construction.
///
/// Keeps a reusable f64 accumulator so steady-state rounds aggregate
/// without allocating.
#[derive(Debug, Clone, Default)]
pub struct FedAvg {
    acc: Vec<f64>,
}

impl FedAvg {
    /// Creates the aggregator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Aggregator for FedAvg {
    fn name(&self) -> &'static str {
        "fedavg"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, rng: &mut StdRng) -> Vec<f32> {
        let mut out = vec![0.0f32; dim];
        self.aggregate_into(updates, &mut out, rng);
        out
    }

    fn aggregate_into(&mut self, updates: &[ClientUpdate], out: &mut [f32], _rng: &mut StdRng) {
        mean_delta_into(updates, out, &mut self.acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn averages_uniformly() {
        let mut agg = FedAvg::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[2.0, 0.0], &[0.0, 2.0]]);
        assert_eq!(agg.aggregate(&us, 2, &mut rng), vec![1.0, 1.0]);
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = FedAvg::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 3, &mut rng), vec![0.0; 3]);
    }

    #[test]
    fn identity_on_single_update() {
        let mut agg = FedAvg::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0, -2.0, 3.0]]);
        assert_eq!(agg.aggregate(&us, 3, &mut rng), vec![1.0, -2.0, 3.0]);
    }
}
