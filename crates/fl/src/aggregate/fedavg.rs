//! FedAvg: plain uniform averaging (Eq. 2 of the paper).

use super::Aggregator;
use crate::update::{mean_delta_into, mean_delta_pooled_into, ClientUpdate};
use collapois_runtime::pool::WorkerPool;
use rand::rngs::StdRng;

/// Uniform mean of the round's deltas — the paper's Eq. 2 baseline
/// aggregation, vulnerable by construction.
///
/// Keeps a reusable f64 accumulator so steady-state rounds aggregate
/// without allocating.
#[derive(Debug, Clone, Default)]
pub struct FedAvg {
    acc: Vec<f64>,
}

impl FedAvg {
    /// Creates the aggregator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Aggregator for FedAvg {
    fn name(&self) -> &'static str {
        "fedavg"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, rng: &mut StdRng) -> Vec<f32> {
        let mut out = vec![0.0f32; dim];
        self.aggregate_into(updates, &mut out, rng);
        out
    }

    fn aggregate_into(&mut self, updates: &[ClientUpdate], out: &mut [f32], _rng: &mut StdRng) {
        mean_delta_into(updates, out, &mut self.acc);
    }

    fn aggregate_pooled(
        &mut self,
        updates: &[ClientUpdate],
        out: &mut [f32],
        _rng: &mut StdRng,
        pool: &WorkerPool,
    ) {
        mean_delta_pooled_into(updates, out, &mut self.acc, pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn averages_uniformly() {
        let mut agg = FedAvg::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[2.0, 0.0], &[0.0, 2.0]]);
        assert_eq!(agg.aggregate(&us, 2, &mut rng), vec![1.0, 1.0]);
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = FedAvg::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 3, &mut rng), vec![0.0; 3]);
    }

    #[test]
    fn pooled_mean_matches_serial_bitwise() {
        let us: Vec<ClientUpdate> = (0..17)
            .map(|i| {
                let delta: Vec<f32> = (0..6).map(|j| ((i + j * 19) as f32).sin()).collect();
                ClientUpdate::new(i, delta, 10)
            })
            .collect();
        let mut agg = FedAvg::new();
        let mut rng = StdRng::seed_from_u64(0);
        let serial = agg.aggregate(&us, 6, &mut rng);
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let mut out = vec![0.0f32; 6];
            agg.aggregate_pooled(&us, &mut out, &mut rng, &pool);
            let a: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "workers={workers}");
        }
    }

    #[test]
    fn identity_on_single_update() {
        let mut agg = FedAvg::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0, -2.0, 3.0]]);
        assert_eq!(agg.aggregate(&us, 3, &mut rng), vec![1.0, -2.0, 3.0]);
    }
}
