//! FedAvg: plain uniform averaging (Eq. 2 of the paper).

use super::Aggregator;
use crate::update::{mean_delta, ClientUpdate};
use rand::rngs::StdRng;

/// Uniform mean of the round's deltas — the paper's Eq. 2 baseline
/// aggregation, vulnerable by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedAvg;

impl FedAvg {
    /// Creates the aggregator.
    pub fn new() -> Self {
        Self
    }
}

impl Aggregator for FedAvg {
    fn name(&self) -> &'static str {
        "fedavg"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, _rng: &mut StdRng) -> Vec<f32> {
        mean_delta(updates, dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn averages_uniformly() {
        let mut agg = FedAvg::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[2.0, 0.0], &[0.0, 2.0]]);
        assert_eq!(agg.aggregate(&us, 2, &mut rng), vec![1.0, 1.0]);
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = FedAvg::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 3, &mut rng), vec![0.0; 3]);
    }

    #[test]
    fn identity_on_single_update() {
        let mut agg = FedAvg::new();
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0, -2.0, 3.0]]);
        assert_eq!(agg.aggregate(&us, 3, &mut rng), vec![1.0, -2.0, 3.0]);
    }
}
