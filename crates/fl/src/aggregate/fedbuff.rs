//! FedBuff: staleness-weighted buffered-async merging (Nguyen et al.,
//! AISTATS 2022).
//!
//! In buffered-async mode updates do not belong to a synchronous round:
//! each client trained against whatever global version it fetched, and the
//! buffer flushes when it holds K completions or a virtual deadline
//! passes. A completion that fetched version `v` and lands when the server
//! is at version `v + s` is *s-stale*; FedBuff discounts it by
//! `w = (1 + s)^(-a)` and applies the weighted mean
//! `Δ = Σ wᵢ·Δθᵢ / Σ wᵢ`.
//!
//! The merge reuses the engine's fixed-shape pooled reduction tree
//! ([`crate::update::weighted_mean_delta_pooled_into`]), so it is bitwise
//! identical at every worker count — the property the sim's determinism
//! guarantee leans on.

use crate::update::{weighted_mean_delta_pooled_into, ClientUpdate};
use collapois_runtime::pool::WorkerPool;

/// FedBuff's default staleness exponent.
pub const DEFAULT_STALENESS_DECAY: f64 = 0.5;

/// The FedBuff discount `(1 + staleness)^(-decay)`. `decay = 0` weights
/// all updates equally (pure buffered FedAvg).
pub fn staleness_weight(staleness: u64, decay: f64) -> f64 {
    (1.0 + staleness as f64).powf(-decay)
}

/// Staleness-weighted buffered merge state (reusable accumulators).
#[derive(Debug, Default)]
pub struct FedBuff {
    decay: f64,
    weights: Vec<f64>,
    acc: Vec<f64>,
}

impl FedBuff {
    /// A merger with staleness exponent `decay` (≥ 0).
    pub fn new(decay: f64) -> Self {
        assert!(decay.is_finite() && decay >= 0.0, "invalid decay {decay}");
        Self {
            decay,
            weights: Vec::new(),
            acc: Vec::new(),
        }
    }

    /// Short name for traces and report tables.
    pub fn name(&self) -> &'static str {
        "fedbuff"
    }

    /// The configured staleness exponent.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Merges one flushed buffer: `out = Σ wᵢ·Δθᵢ / Σ wᵢ` with
    /// `wᵢ = (1 + staleness[i])^(-decay)`, fanned over `pool` through the
    /// fixed-shape reduction tree (bitwise worker-count-invariant).
    /// Writes zeros when `updates` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `staleness.len() != updates.len()` or any update's
    /// dimension differs from `out.len()`.
    pub fn merge_pooled(
        &mut self,
        updates: &[ClientUpdate],
        staleness: &[u64],
        out: &mut [f32],
        pool: &WorkerPool,
    ) {
        assert_eq!(
            staleness.len(),
            updates.len(),
            "one staleness per update required"
        );
        self.weights.clear();
        self.weights
            .extend(staleness.iter().map(|&s| staleness_weight(s, self.decay)));
        weighted_mean_delta_pooled_into(updates, &self.weights, out, &mut self.acc, pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::mean_delta;

    fn updates(vs: &[&[f32]]) -> Vec<ClientUpdate> {
        vs.iter()
            .enumerate()
            .map(|(i, v)| ClientUpdate::new(i, v.to_vec(), 10))
            .collect()
    }

    #[test]
    fn weight_decays_with_staleness() {
        assert_eq!(staleness_weight(0, 0.5), 1.0);
        let w1 = staleness_weight(1, 0.5);
        let w3 = staleness_weight(3, 0.5);
        assert!((w1 - 0.5f64.sqrt() * 2.0 / 2.0).abs() < 1e-12);
        assert!(w3 < w1 && w1 < 1.0);
        assert_eq!(staleness_weight(7, 0.0), 1.0, "decay 0 ignores staleness");
    }

    #[test]
    fn fresh_buffer_matches_uniform_mean_bitwise() {
        let us = updates(&[&[1.0, 2.0, 3.0], &[3.0, 0.0, -1.0], &[-2.0, 4.0, 0.5]]);
        let pool = WorkerPool::new(1);
        let mut fb = FedBuff::new(DEFAULT_STALENESS_DECAY);
        let mut out = vec![0.0f32; 3];
        fb.merge_pooled(&us, &[0, 0, 0], &mut out, &pool);
        let uniform = mean_delta(&us, 3);
        let a: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = uniform.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "all-fresh buffers must merge as plain FedAvg");
    }

    #[test]
    fn stale_updates_are_discounted() {
        let us = updates(&[&[1.0], &[-1.0]]);
        let pool = WorkerPool::new(1);
        let mut fb = FedBuff::new(1.0);
        let mut out = vec![0.0f32; 1];
        // Second update is 3-stale: w = 1/4; merge = (1 - 0.25)/(1.25).
        fb.merge_pooled(&us, &[0, 3], &mut out, &pool);
        assert!((out[0] - 0.6).abs() < 1e-6, "got {}", out[0]);
    }

    #[test]
    fn merge_is_worker_count_invariant() {
        let us: Vec<ClientUpdate> = (0..21)
            .map(|i| ClientUpdate::new(i, (0..9).map(|j| ((i * 3 + j) as f32).sin()).collect(), 1))
            .collect();
        let staleness: Vec<u64> = (0..21).map(|i| (i % 5) as u64).collect();
        let mut reference: Option<Vec<u32>> = None;
        for workers in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let mut fb = FedBuff::new(0.5);
            let mut out = vec![0.0f32; 9];
            fb.merge_pooled(&us, &staleness, &mut out, &pool);
            let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "workers={workers}"),
            }
        }
    }

    #[test]
    fn empty_buffer_merges_to_zero() {
        let pool = WorkerPool::new(1);
        let mut fb = FedBuff::new(0.5);
        let mut out = vec![7.0f32; 4];
        fb.merge_pooled(&[], &[], &mut out, &pool);
        assert_eq!(out, vec![0.0; 4]);
    }
}
