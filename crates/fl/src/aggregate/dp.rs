//! DP-optimizer defense [Hong et al., 2020; McMahan et al., ICLR 2018].
//!
//! Server-side differential privacy: clip every client update to a
//! sensitivity bound `S`, average, then add Gaussian noise with std
//! `z·S/|S_t|` where `z` is the noise multiplier (user-level DP accounting).

use super::Aggregator;
use crate::update::{mean_delta, ClientUpdate};
use collapois_stats::distribution::standard_normal;
use collapois_stats::geometry::clip_to_norm;
use rand::rngs::StdRng;

/// Server-side DP aggregation (clip + calibrated Gaussian noise).
#[derive(Debug, Clone, Copy)]
pub struct DpAggregator {
    clip: f64,
    noise_multiplier: f64,
}

impl DpAggregator {
    /// Creates the aggregator.
    ///
    /// # Panics
    ///
    /// Panics if `clip <= 0` or `noise_multiplier < 0`.
    pub fn new(clip: f64, noise_multiplier: f64) -> Self {
        assert!(clip > 0.0, "clip must be positive");
        assert!(
            noise_multiplier >= 0.0,
            "noise multiplier must be non-negative"
        );
        Self {
            clip,
            noise_multiplier,
        }
    }

    /// The sensitivity (clipping) bound.
    pub fn clip(&self) -> f64 {
        self.clip
    }
}

impl Aggregator for DpAggregator {
    fn name(&self) -> &'static str {
        "dp"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, rng: &mut StdRng) -> Vec<f32> {
        let clipped: Vec<ClientUpdate> = updates
            .iter()
            .map(|u| {
                let mut delta = u.delta.clone();
                clip_to_norm(&mut delta, self.clip);
                ClientUpdate::new(u.client_id, delta, u.num_samples)
            })
            .collect();
        let mut agg = mean_delta(&clipped, dim);
        if self.noise_multiplier > 0.0 && !updates.is_empty() {
            let sigma = (self.noise_multiplier * self.clip / updates.len() as f64) as f32;
            for v in &mut agg {
                *v += sigma * standard_normal(rng) as f32;
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use collapois_stats::geometry::l2_norm;
    use rand::SeedableRng;

    #[test]
    fn clips_before_averaging() {
        let mut agg = DpAggregator::new(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[100.0, 0.0], &[0.0, 100.0]]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(l2_norm(&out) <= 1.0 + 1e-6);
    }

    #[test]
    fn noise_scales_inversely_with_cohort() {
        let mut agg = DpAggregator::new(1.0, 1.0);
        let zeros = vec![0.0f32; 1000];
        let small = updates(&[&zeros, &zeros]);
        let many: Vec<Vec<f32>> = (0..50).map(|_| zeros.clone()).collect();
        let big = updates(&many.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(1);
        let a = agg.aggregate(&small, 1000, &mut rng);
        let b = agg.aggregate(&big, 1000, &mut rng);
        assert!(
            l2_norm(&a) > l2_norm(&b),
            "noise must shrink with cohort size"
        );
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = DpAggregator::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 3, &mut rng), vec![0.0; 3]);
    }
}
