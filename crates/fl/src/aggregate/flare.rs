//! FLARE [Wang et al., ASIACCS 2022] — trust-score-weighted aggregation.
//!
//! FLARE estimates a trust score per update from the pairwise distances of
//! penultimate-layer representations; updates far from the crowd receive low
//! trust. This reproduction computes the trust scores from the update
//! vectors themselves (the same trust-weighted aggregation path; see
//! DESIGN.md §1).

use super::Aggregator;
use crate::update::ClientUpdate;
use collapois_nn::kernels;
use rand::rngs::StdRng;

/// Trust-weighted aggregation with softmax over negative mean pairwise
/// distances.
#[derive(Debug, Clone, Copy)]
pub struct Flare {
    /// Softmax temperature: larger = sharper down-weighting of outliers.
    sharpness: f64,
}

impl Flare {
    /// Creates the aggregator.
    ///
    /// # Panics
    ///
    /// Panics if `sharpness <= 0`.
    pub fn new(sharpness: f64) -> Self {
        assert!(sharpness > 0.0, "sharpness must be positive");
        Self { sharpness }
    }

    /// Trust scores (softmax weights, sum to 1) for the given updates.
    pub fn trust_scores(&self, updates: &[ClientUpdate]) -> Vec<f64> {
        let n = updates.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        // Mean distance of each update to all others, from the kernel-layer
        // pairwise squared-distance matrix (one evaluation per unordered
        // pair).
        let deltas: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
        let d2 = kernels::pairwise_sq_distances(&deltas);
        let mut mean_dist = vec![0.0f64; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = d2[i * n + j].sqrt();
                mean_dist[i] += d;
                mean_dist[j] += d;
            }
        }
        for m in &mut mean_dist {
            *m /= (n - 1) as f64;
        }
        // Normalize distances to a comparable scale before the softmax.
        let scale = mean_dist.iter().sum::<f64>() / n as f64;
        let scale = scale.max(1e-12);
        let logits: Vec<f64> = mean_dist
            .iter()
            .map(|&d| -self.sharpness * d / scale)
            .collect();
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }
}

impl Aggregator for Flare {
    fn name(&self) -> &'static str {
        "flare"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, _rng: &mut StdRng) -> Vec<f32> {
        if updates.is_empty() {
            return vec![0.0; dim];
        }
        let trust = self.trust_scores(updates);
        let mut acc = vec![0.0f64; dim];
        for (u, &w) in updates.iter().zip(&trust) {
            kernels::acc_scaled(&mut acc, &u.delta, w);
        }
        acc.into_iter().map(|a| a as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn outlier_receives_low_trust() {
        let agg = Flare::new(4.0);
        let us = updates(&[&[0.0, 0.0], &[0.1, 0.0], &[0.0, 0.1], &[50.0, 50.0]]);
        let trust = agg.trust_scores(&us);
        assert!(trust[3] < 0.05, "outlier trust {}", trust[3]);
        assert!((trust.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn aggregation_discounts_outlier() {
        let mut agg = Flare::new(4.0);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[0.0], &[0.1], &[0.05], &[100.0]]);
        let out = agg.aggregate(&us, 1, &mut rng);
        assert!(out[0] < 10.0, "outlier dominated: {}", out[0]);
    }

    #[test]
    fn identical_updates_get_uniform_trust() {
        let agg = Flare::new(4.0);
        let us = updates(&[&[1.0], &[1.0], &[1.0]]);
        let trust = agg.trust_scores(&us);
        for t in trust {
            assert!((t - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let mut agg = Flare::new(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 2, &mut rng), vec![0.0; 2]);
        let single = updates(&[&[3.0]]);
        assert_eq!(agg.aggregate(&single, 1, &mut rng), vec![3.0]);
    }
}
