//! User-level differential privacy [McMahan et al., ICLR 2018].
//!
//! Unlike the per-step DP-optimizer, user-level DP protects whole client
//! *updates*: every update is clipped to the sensitivity bound `S`, the
//! average is perturbed with Gaussian noise `N(0, (z·S/m)²)` per coordinate,
//! and the privacy cost of the whole training run is tracked with a zCDP
//! accountant (each Gaussian release of noise multiplier `z` costs
//! `ρ = 1/(2z²)`; `ε(δ) = ρ + 2√(ρ·ln(1/δ))`).

use super::Aggregator;
use crate::update::{mean_delta, ClientUpdate};
use collapois_stats::distribution::standard_normal;
use collapois_stats::geometry::clip_to_norm;
use rand::rngs::StdRng;

/// User-level DP aggregation with zCDP accounting.
#[derive(Debug, Clone, Copy)]
pub struct UserLevelDp {
    sensitivity: f64,
    noise_multiplier: f64,
    /// Accumulated zCDP budget ρ.
    rho: f64,
}

impl UserLevelDp {
    /// Creates the aggregator with sensitivity bound `S` and noise
    /// multiplier `z`.
    ///
    /// # Panics
    ///
    /// Panics if `sensitivity <= 0` or `noise_multiplier <= 0`.
    pub fn new(sensitivity: f64, noise_multiplier: f64) -> Self {
        assert!(sensitivity > 0.0, "sensitivity must be positive");
        assert!(noise_multiplier > 0.0, "noise multiplier must be positive");
        Self {
            sensitivity,
            noise_multiplier,
            rho: 0.0,
        }
    }

    /// Accumulated zCDP budget ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Spent (ε, δ)-DP budget via the standard zCDP conversion
    /// `ε = ρ + 2·√(ρ·ln(1/δ))`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside `(0, 1)`.
    pub fn epsilon(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        self.rho + 2.0 * (self.rho * (1.0 / delta).ln()).sqrt()
    }
}

impl Aggregator for UserLevelDp {
    fn name(&self) -> &'static str {
        "user-dp"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, rng: &mut StdRng) -> Vec<f32> {
        let clipped: Vec<ClientUpdate> = updates
            .iter()
            .map(|u| {
                let mut delta = u.delta.clone();
                clip_to_norm(&mut delta, self.sensitivity);
                ClientUpdate::new(u.client_id, delta, u.num_samples)
            })
            .collect();
        let mut agg = mean_delta(&clipped, dim);
        if !updates.is_empty() {
            let sigma = (self.noise_multiplier * self.sensitivity / updates.len() as f64) as f32;
            for v in &mut agg {
                *v += sigma * standard_normal(rng) as f32;
            }
            // One Gaussian release at multiplier z.
            self.rho += 1.0 / (2.0 * self.noise_multiplier * self.noise_multiplier);
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use collapois_stats::geometry::l2_norm;
    use rand::SeedableRng;

    #[test]
    fn clips_to_sensitivity() {
        let mut agg = UserLevelDp::new(1.0, 0.01);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[100.0, 0.0]]);
        let out = agg.aggregate(&us, 2, &mut rng);
        // Clipped to 1, plus modest noise.
        assert!(l2_norm(&out) < 2.0);
    }

    #[test]
    fn accountant_accumulates_per_round() {
        let mut agg = UserLevelDp::new(1.0, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(agg.rho(), 0.0);
        let us = updates(&[&[0.1, 0.1], &[0.2, 0.0]]);
        for _ in 0..8 {
            let _ = agg.aggregate(&us, 2, &mut rng);
        }
        // rho = 8 / (2·4) = 1.0
        assert!((agg.rho() - 1.0).abs() < 1e-12);
        let eps = agg.epsilon(1e-5);
        assert!(eps > 1.0, "eps accounts for the delta term: {eps}");
        // Empty rounds cost nothing.
        let _ = agg.aggregate(&[], 2, &mut rng);
        assert!((agg.rho() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_noise_means_cheaper_privacy() {
        let mut low_noise = UserLevelDp::new(1.0, 1.0);
        let mut high_noise = UserLevelDp::new(1.0, 4.0);
        let mut rng = StdRng::seed_from_u64(2);
        let us = updates(&[&[0.1]]);
        let _ = low_noise.aggregate(&us, 1, &mut rng);
        let _ = high_noise.aggregate(&us, 1, &mut rng);
        assert!(high_noise.epsilon(1e-5) < low_noise.epsilon(1e-5));
    }

    #[test]
    #[should_panic(expected = "noise multiplier must be positive")]
    fn rejects_zero_noise() {
        let _ = UserLevelDp::new(1.0, 0.0);
    }
}
