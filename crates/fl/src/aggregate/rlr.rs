//! Robust Learning Rate [Ozdayi et al., AAAI 2021].
//!
//! For every model coordinate, count how many clients agree on the update's
//! sign; where the |sum of signs| falls below a threshold θ, the server's
//! learning rate for that coordinate is flipped to −1 (pushing against the
//! disputed direction). Under highly non-IID data most coordinates are
//! disputed, which destroys benign accuracy — the paper's observed 61.53 %
//! Benign-AC drop.

use super::Aggregator;
use crate::update::{mean_delta, ClientUpdate};
use rand::rngs::StdRng;

/// RLR defense: sign-agreement-gated learning-rate flipping.
#[derive(Debug, Clone, Copy)]
pub struct RobustLearningRate {
    threshold: usize,
}

impl RobustLearningRate {
    /// Creates the defense with agreement threshold θ (the minimum |Σ sign|
    /// needed to keep the positive learning rate).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`.
    pub fn new(threshold: usize) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        Self { threshold }
    }
}

impl Aggregator for RobustLearningRate {
    fn name(&self) -> &'static str {
        "rlr"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, _rng: &mut StdRng) -> Vec<f32> {
        if updates.is_empty() {
            return vec![0.0; dim];
        }
        let mut agg = mean_delta(updates, dim);
        for (c, v) in agg.iter_mut().enumerate() {
            let sign_sum: i64 = updates
                .iter()
                .map(|u| {
                    let d = u.delta[c];
                    if d > 0.0 {
                        1
                    } else if d < 0.0 {
                        -1
                    } else {
                        0
                    }
                })
                .sum();
            if (sign_sum.unsigned_abs() as usize) < self.threshold {
                *v = -*v;
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn agreement_keeps_direction() {
        let mut agg = RobustLearningRate::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0], &[2.0], &[0.5]]);
        let out = agg.aggregate(&us, 1, &mut rng);
        assert!(out[0] > 0.0);
    }

    #[test]
    fn dispute_flips_direction() {
        let mut agg = RobustLearningRate::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        // 2 positive, 1 negative: |sum| = 1 < 3 → flipped.
        let us = updates(&[&[1.0], &[2.0], &[-0.5]]);
        let out = agg.aggregate(&us, 1, &mut rng);
        let mean = (1.0 + 2.0 - 0.5) / 3.0;
        assert!(
            (out[0] + mean).abs() < 1e-6,
            "expected flipped mean, got {}",
            out[0]
        );
    }

    #[test]
    fn per_coordinate_independence() {
        let mut agg = RobustLearningRate::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0, 1.0], &[1.0, -1.0]]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(out[0] > 0.0); // agreement on coord 0
        assert!(out[1].abs() < 1e-9); // disputed coord averages to 0 either way
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = RobustLearningRate::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 2, &mut rng), vec![0.0; 2]);
    }
}
