//! Robust aggregation rules (Table I of the paper).
//!
//! Every rule consumes the round's client updates (flat deltas) and produces
//! the aggregated delta the server applies as `θ ← θ + λ·Δ`. Rules that also
//! modify the resulting global model (CRFL's parameter clipping/noising)
//! implement [`Aggregator::post_process`].

mod crfl;
mod dp;
mod fedavg;
mod fedbuff;
mod flare;
mod krum;
mod median;
mod norm_bound;
mod rlr;
mod sign_sgd;
mod stat_filter;
mod trimmed_mean;
mod user_dp;

pub use crfl::Crfl;
pub use dp::DpAggregator;
pub use fedavg::FedAvg;
pub use fedbuff::{staleness_weight, FedBuff, DEFAULT_STALENESS_DECAY};
pub use flare::Flare;
pub use krum::Krum;
pub use median::CoordinateMedian;
pub use norm_bound::NormBound;
pub use rlr::RobustLearningRate;
pub use sign_sgd::SignSgd;
pub use stat_filter::StatFilter;
pub use trimmed_mean::TrimmedMean;
pub use user_dp::UserLevelDp;

use crate::update::ClientUpdate;
use collapois_runtime::pool::WorkerPool;
use rand::rngs::StdRng;

/// A server-side aggregation rule.
pub trait Aggregator: std::fmt::Debug + Send {
    /// Short name for report tables.
    fn name(&self) -> &'static str;

    /// Aggregates the round's updates into one delta of length `dim`.
    /// Must return a zero vector when `updates` is empty.
    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, rng: &mut StdRng) -> Vec<f32>;

    /// In-place aggregation: writes the aggregated delta into `out`
    /// (whose length is the parameter dimension). The default forwards to
    /// [`Aggregator::aggregate`] and copies; rules on the steady-state hot
    /// path (FedAvg) override this to reuse internal accumulators and write
    /// straight into the borrowed slice. Both paths must produce bitwise
    /// identical results.
    fn aggregate_into(&mut self, updates: &[ClientUpdate], out: &mut [f32], rng: &mut StdRng) {
        let v = self.aggregate(updates, out.len(), rng);
        out.copy_from_slice(&v);
    }

    /// Parallel [`Aggregator::aggregate_into`]: rules with shardable inner
    /// loops (FedAvg's reduction tree, NormBound's clip-average, Krum's
    /// distance rows, trimmed-mean/median's coordinate shards) fan them out
    /// over `pool`. Implementations must keep shard boundaries a function
    /// of the update count and dimension only — never the worker count — so
    /// the result stays **bitwise identical** to the serial path. The
    /// default ignores the pool and runs serially.
    fn aggregate_pooled(
        &mut self,
        updates: &[ClientUpdate],
        out: &mut [f32],
        rng: &mut StdRng,
        _pool: &WorkerPool,
    ) {
        self.aggregate_into(updates, out, rng);
    }

    /// Optional transformation of the global model after the delta has been
    /// applied (e.g. CRFL's parameter clipping + noising).
    fn post_process(&mut self, _global: &mut [f32], _rng: &mut StdRng) {}
}

/// Refills `out` with the per-coordinate values across updates so the
/// scratch-buffer aggregators (median/trimmed-mean) can reuse one buffer
/// across all `dim` coordinates.
pub(crate) fn fill_coordinate(updates: &[ClientUpdate], coord: usize, out: &mut Vec<f32>) {
    out.clear();
    out.extend(updates.iter().map(|u| u.delta[coord]));
}

/// Coordinates per column shard for the per-coordinate aggregators
/// (trimmed-mean / median). A fixed width keeps shard boundaries a function
/// of the dimension only — per-coordinate reductions are independent, so
/// any sharding is bitwise exact; the constant just bounds dispatch
/// granularity.
pub(crate) const COORD_SHARD: usize = 256;

/// Reduces one column shard: `chunk` is the output slice for coordinates
/// `shard·COORD_SHARD ..`, each gathered into `scratch` and collapsed by
/// `reduce`.
pub(crate) fn coordinate_shard<R>(
    updates: &[ClientUpdate],
    shard: usize,
    chunk: &mut [f32],
    scratch: &mut Vec<f32>,
    reduce: R,
) where
    R: Fn(&mut [f32]) -> f32,
{
    let base = shard * COORD_SHARD;
    for (k, slot) in chunk.iter_mut().enumerate() {
        fill_coordinate(updates, base + k, scratch);
        *slot = reduce(scratch);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::ClientUpdate;

    /// Builds updates from plain vectors.
    pub fn updates(vs: &[&[f32]]) -> Vec<ClientUpdate> {
        vs.iter()
            .enumerate()
            .map(|(i, v)| ClientUpdate::new(i, v.to_vec(), 10))
            .collect()
    }
}
