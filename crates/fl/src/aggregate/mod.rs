//! Robust aggregation rules (Table I of the paper).
//!
//! Every rule consumes the round's client updates (flat deltas) and produces
//! the aggregated delta the server applies as `θ ← θ + λ·Δ`. Rules that also
//! modify the resulting global model (CRFL's parameter clipping/noising)
//! implement [`Aggregator::post_process`].

mod crfl;
mod dp;
mod fedavg;
mod flare;
mod krum;
mod median;
mod norm_bound;
mod rlr;
mod sign_sgd;
mod stat_filter;
mod trimmed_mean;
mod user_dp;

pub use crfl::Crfl;
pub use dp::DpAggregator;
pub use fedavg::FedAvg;
pub use flare::Flare;
pub use krum::Krum;
pub use median::CoordinateMedian;
pub use norm_bound::NormBound;
pub use rlr::RobustLearningRate;
pub use sign_sgd::SignSgd;
pub use stat_filter::StatFilter;
pub use trimmed_mean::TrimmedMean;
pub use user_dp::UserLevelDp;

use crate::update::ClientUpdate;
use rand::rngs::StdRng;

/// A server-side aggregation rule.
pub trait Aggregator: std::fmt::Debug + Send {
    /// Short name for report tables.
    fn name(&self) -> &'static str;

    /// Aggregates the round's updates into one delta of length `dim`.
    /// Must return a zero vector when `updates` is empty.
    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, rng: &mut StdRng) -> Vec<f32>;

    /// In-place aggregation: writes the aggregated delta into `out`
    /// (whose length is the parameter dimension). The default forwards to
    /// [`Aggregator::aggregate`] and copies; rules on the steady-state hot
    /// path (FedAvg) override this to reuse internal accumulators and write
    /// straight into the borrowed slice. Both paths must produce bitwise
    /// identical results.
    fn aggregate_into(&mut self, updates: &[ClientUpdate], out: &mut [f32], rng: &mut StdRng) {
        let v = self.aggregate(updates, out.len(), rng);
        out.copy_from_slice(&v);
    }

    /// Optional transformation of the global model after the delta has been
    /// applied (e.g. CRFL's parameter clipping + noising).
    fn post_process(&mut self, _global: &mut [f32], _rng: &mut StdRng) {}
}

/// Refills `out` with the per-coordinate values across updates so the
/// scratch-buffer aggregators (median/trimmed-mean) can reuse one buffer
/// across all `dim` coordinates.
pub(crate) fn fill_coordinate(updates: &[ClientUpdate], coord: usize, out: &mut Vec<f32>) {
    out.clear();
    out.extend(updates.iter().map(|u| u.delta[coord]));
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::ClientUpdate;

    /// Builds updates from plain vectors.
    pub fn updates(vs: &[&[f32]]) -> Vec<ClientUpdate> {
        vs.iter()
            .enumerate()
            .map(|(i, v)| ClientUpdate::new(i, v.to_vec(), 10))
            .collect()
    }
}
