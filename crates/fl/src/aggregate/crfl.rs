//! CRFL [Xie et al., ICML 2021] — certified robustness via model clipping
//! and noising.
//!
//! CRFL averages updates normally but then **clips the global model's
//! parameter norm** and perturbs it with Gaussian noise, yielding sample
//! robustness certificates. The clip/noise happens in
//! [`Aggregator::post_process`].

use super::Aggregator;
use crate::update::{mean_delta, ClientUpdate};
use collapois_nn::kernels;
use collapois_stats::distribution::standard_normal;
use rand::rngs::StdRng;

/// CRFL: FedAvg + global-model parameter clipping + noising.
#[derive(Debug, Clone, Copy)]
pub struct Crfl {
    param_bound: f64,
    noise_std: f64,
}

impl Crfl {
    /// Creates the defense.
    ///
    /// # Panics
    ///
    /// Panics if `param_bound <= 0` or `noise_std < 0`.
    pub fn new(param_bound: f64, noise_std: f64) -> Self {
        assert!(param_bound > 0.0, "param bound must be positive");
        assert!(noise_std >= 0.0, "noise std must be non-negative");
        Self {
            param_bound,
            noise_std,
        }
    }
}

impl Aggregator for Crfl {
    fn name(&self) -> &'static str {
        "crfl"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, _rng: &mut StdRng) -> Vec<f32> {
        mean_delta(updates, dim)
    }

    fn post_process(&mut self, global: &mut [f32], rng: &mut StdRng) {
        let norm = kernels::sq_l2_norm(global).sqrt();
        if norm > self.param_bound {
            kernels::scale(global, (self.param_bound / norm) as f32);
        }
        if self.noise_std > 0.0 {
            for v in global.iter_mut() {
                *v += (self.noise_std * standard_normal(rng)) as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use collapois_stats::geometry::l2_norm;
    use rand::SeedableRng;

    #[test]
    fn aggregation_is_plain_mean() {
        let mut agg = Crfl::new(10.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[2.0], &[4.0]]);
        assert_eq!(agg.aggregate(&us, 1, &mut rng), vec![3.0]);
    }

    #[test]
    fn post_process_clips_model_norm() {
        let mut agg = Crfl::new(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut global = vec![3.0f32, 4.0];
        agg.post_process(&mut global, &mut rng);
        assert!((l2_norm(&global) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn post_process_noise_perturbs() {
        let mut agg = Crfl::new(100.0, 0.5);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let mut a = vec![0.0f32; 4];
        let mut b = vec![0.0f32; 4];
        agg.post_process(&mut a, &mut r1);
        agg.post_process(&mut b, &mut r2);
        assert_ne!(a, b);
    }
}
