//! α-trimmed mean [Yin et al., ICML 2018].

use super::{coordinate_shard, fill_coordinate, Aggregator, COORD_SHARD};
use crate::update::ClientUpdate;
use collapois_nn::kernels;
use collapois_runtime::pool::{WorkerArenas, WorkerPool};
use rand::rngs::StdRng;

/// Per-coordinate trimmed mean: drop the top and bottom `beta` fraction of
/// values, average the rest.
///
/// Each coordinate is gathered into a reusable scratch buffer and reduced
/// by [`kernels::trimmed_mean_inplace`], which partial-selects the trim
/// boundaries instead of fully sorting and sums the kept middle in
/// ascending order — so the result is independent of client order. The
/// pooled path shards the coordinate loop into fixed-width column blocks
/// (coordinates are independent, so any sharding is bitwise exact), each
/// lane gathering into its own persistent scratch buffer.
#[derive(Debug)]
pub struct TrimmedMean {
    beta: f64,
    scratch: Vec<f32>,
    /// Per-lane gather buffers for the sharded path.
    arenas: WorkerArenas<Vec<f32>>,
}

impl TrimmedMean {
    /// Creates the aggregator.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 0.5)`.
    pub fn new(beta: f64) -> Self {
        assert!((0.0..0.5).contains(&beta), "beta must be in [0, 0.5)");
        Self {
            beta,
            scratch: Vec::new(),
            arenas: WorkerArenas::new(),
        }
    }

    /// Values trimmed from each end for `n` updates.
    fn trim(&self, n: usize) -> usize {
        (((n as f64) * self.beta).floor() as usize).min(n / 2)
    }
}

impl Aggregator for TrimmedMean {
    fn name(&self) -> &'static str {
        "trimmed-mean"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, rng: &mut StdRng) -> Vec<f32> {
        let mut out = vec![0.0f32; dim];
        self.aggregate_into(updates, &mut out, rng);
        out
    }

    fn aggregate_into(&mut self, updates: &[ClientUpdate], out: &mut [f32], _rng: &mut StdRng) {
        if updates.is_empty() {
            out.fill(0.0);
            return;
        }
        let trim = self.trim(updates.len());
        for (c, slot) in out.iter_mut().enumerate() {
            fill_coordinate(updates, c, &mut self.scratch);
            *slot = kernels::trimmed_mean_inplace(&mut self.scratch, trim);
        }
    }

    fn aggregate_pooled(
        &mut self,
        updates: &[ClientUpdate],
        out: &mut [f32],
        _rng: &mut StdRng,
        pool: &WorkerPool,
    ) {
        if updates.is_empty() {
            out.fill(0.0);
            return;
        }
        let trim = self.trim(updates.len());
        pool.for_chunks_mut_with_arena(
            &mut self.arenas,
            out,
            COORD_SHARD,
            Vec::new,
            |shard, chunk, scratch| {
                coordinate_shard(updates, shard, chunk, scratch, |buf| {
                    kernels::trimmed_mean_inplace(buf, trim)
                });
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn trims_extremes() {
        let mut agg = TrimmedMean::new(0.25);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[-1000.0], &[1.0], &[3.0], &[1000.0]]);
        assert_eq!(agg.aggregate(&us, 1, &mut rng), vec![2.0]);
    }

    #[test]
    fn zero_beta_is_plain_mean() {
        let mut agg = TrimmedMean::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(agg.aggregate(&us, 1, &mut rng), vec![2.0]);
    }

    #[test]
    fn bounded_per_coordinate() {
        let mut agg = TrimmedMean::new(0.2);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[
            &[0.0, 5.0],
            &[1.0, 6.0],
            &[2.0, 7.0],
            &[3.0, 8.0],
            &[4.0, 9.0],
        ]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(out[0] >= 0.0 && out[0] <= 4.0);
        assert!(out[1] >= 5.0 && out[1] <= 9.0);
    }

    #[test]
    #[should_panic(expected = "beta must be")]
    fn rejects_bad_beta() {
        let _ = TrimmedMean::new(0.5);
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = TrimmedMean::new(0.1);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 4, &mut rng), vec![0.0; 4]);
    }

    #[test]
    fn pooled_shards_match_serial_bitwise() {
        // Dimension far beyond one COORD_SHARD so several shards exist.
        let dim = 600;
        let us: Vec<ClientUpdate> = (0..11)
            .map(|i| {
                let delta: Vec<f32> = (0..dim).map(|j| ((i * 13 + j) as f32).sin()).collect();
                ClientUpdate::new(i, delta, 10)
            })
            .collect();
        let mut agg = TrimmedMean::new(0.2);
        let mut rng = StdRng::seed_from_u64(0);
        let serial = agg.aggregate(&us, dim, &mut rng);
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let mut out = vec![0.0f32; dim];
            agg.aggregate_pooled(&us, &mut out, &mut rng, &pool);
            let a: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "workers={workers}");
        }
    }
}
