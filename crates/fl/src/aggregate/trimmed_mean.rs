//! α-trimmed mean [Yin et al., ICML 2018].

use super::{fill_coordinate, Aggregator};
use crate::update::ClientUpdate;
use collapois_nn::kernels;
use rand::rngs::StdRng;

/// Per-coordinate trimmed mean: drop the top and bottom `beta` fraction of
/// values, average the rest.
///
/// Each coordinate is gathered into a reusable scratch buffer and reduced
/// by [`kernels::trimmed_mean_inplace`], which partial-selects the trim
/// boundaries instead of fully sorting and sums the kept middle in
/// ascending order — so the result is independent of client order.
#[derive(Debug, Clone)]
pub struct TrimmedMean {
    beta: f64,
    scratch: Vec<f32>,
}

impl TrimmedMean {
    /// Creates the aggregator.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 0.5)`.
    pub fn new(beta: f64) -> Self {
        assert!((0.0..0.5).contains(&beta), "beta must be in [0, 0.5)");
        Self {
            beta,
            scratch: Vec::new(),
        }
    }
}

impl Aggregator for TrimmedMean {
    fn name(&self) -> &'static str {
        "trimmed-mean"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, _rng: &mut StdRng) -> Vec<f32> {
        if updates.is_empty() {
            return vec![0.0; dim];
        }
        let n = updates.len();
        let trim = (((n as f64) * self.beta).floor() as usize).min(n / 2);
        (0..dim)
            .map(|c| {
                fill_coordinate(updates, c, &mut self.scratch);
                kernels::trimmed_mean_inplace(&mut self.scratch, trim)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn trims_extremes() {
        let mut agg = TrimmedMean::new(0.25);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[-1000.0], &[1.0], &[3.0], &[1000.0]]);
        assert_eq!(agg.aggregate(&us, 1, &mut rng), vec![2.0]);
    }

    #[test]
    fn zero_beta_is_plain_mean() {
        let mut agg = TrimmedMean::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(agg.aggregate(&us, 1, &mut rng), vec![2.0]);
    }

    #[test]
    fn bounded_per_coordinate() {
        let mut agg = TrimmedMean::new(0.2);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[
            &[0.0, 5.0],
            &[1.0, 6.0],
            &[2.0, 7.0],
            &[3.0, 8.0],
            &[4.0, 9.0],
        ]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(out[0] >= 0.0 && out[0] <= 4.0);
        assert!(out[1] >= 5.0 && out[1] <= 9.0);
    }

    #[test]
    #[should_panic(expected = "beta must be")]
    fn rejects_bad_beta() {
        let _ = TrimmedMean::new(0.5);
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = TrimmedMean::new(0.1);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 4, &mut rng), vec![0.0; 4]);
    }
}
