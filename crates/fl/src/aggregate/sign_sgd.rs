//! SignSGD with majority vote [Bernstein et al., 2018].

use super::Aggregator;
use crate::update::ClientUpdate;
use rand::rngs::StdRng;

/// SignSGD: the aggregated delta is the per-coordinate majority sign times a
/// fixed step size.
#[derive(Debug, Clone, Copy)]
pub struct SignSgd {
    step: f64,
}

impl SignSgd {
    /// Creates the aggregator with the per-coordinate step size.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn new(step: f64) -> Self {
        assert!(step > 0.0, "step must be positive");
        Self { step }
    }
}

impl Aggregator for SignSgd {
    fn name(&self) -> &'static str {
        "signsgd"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, _rng: &mut StdRng) -> Vec<f32> {
        if updates.is_empty() {
            return vec![0.0; dim];
        }
        let step = self.step as f32;
        (0..dim)
            .map(|c| {
                let vote: i64 = updates
                    .iter()
                    .map(|u| {
                        let d = u.delta[c];
                        if d > 0.0 {
                            1
                        } else if d < 0.0 {
                            -1
                        } else {
                            0
                        }
                    })
                    .sum();
                match vote.cmp(&0) {
                    std::cmp::Ordering::Greater => step,
                    std::cmp::Ordering::Less => -step,
                    std::cmp::Ordering::Equal => 0.0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn majority_vote_per_coordinate() {
        let mut agg = SignSgd::new(0.01);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[5.0, -1.0, 0.0], &[0.1, -2.0, 0.0], &[-9.0, 3.0, 0.0]]);
        let out = agg.aggregate(&us, 3, &mut rng);
        assert_eq!(out, vec![0.01, -0.01, 0.0]);
    }

    #[test]
    fn magnitude_is_ignored() {
        let mut agg = SignSgd::new(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        // A huge malicious magnitude has exactly one vote.
        let us = updates(&[&[1e9], &[-0.1], &[-0.1]]);
        assert_eq!(agg.aggregate(&us, 1, &mut rng), vec![-1.0]);
    }

    #[test]
    fn empty_round_is_zero() {
        let mut agg = SignSgd::new(0.1);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 2, &mut rng), vec![0.0; 2]);
    }
}
