//! Norm bounding [Sun et al., 2019]: clip each update's l2 norm, average,
//! optionally add Gaussian noise.

use super::Aggregator;
use crate::update::{tree_reduce_into, tree_reduce_pooled_into, ClientUpdate, MEAN_CHUNK};
use collapois_nn::kernels;
use collapois_runtime::pool::WorkerPool;
use collapois_stats::distribution::standard_normal;
use rand::rngs::StdRng;

/// NormBound defense: per-update l2 clipping plus optional noise.
///
/// The clip-average runs through the same fixed-shape reduction tree as
/// FedAvg (each leaf chunk clips and accumulates its own updates), so the
/// serial and pooled paths are bitwise identical — and with a bound no
/// update exceeds, NormBound degenerates to exactly FedAvg's sum.
#[derive(Debug, Clone)]
pub struct NormBound {
    bound: f64,
    noise_std: f64,
    /// Reusable partial-accumulator matrix for the reduction tree.
    acc: Vec<f64>,
}

impl NormBound {
    /// Creates the defense with the given clipping bound (no noise).
    ///
    /// # Panics
    ///
    /// Panics if `bound <= 0`.
    pub fn new(bound: f64) -> Self {
        assert!(bound > 0.0, "bound must be positive");
        Self {
            bound,
            noise_std: 0.0,
            acc: Vec::new(),
        }
    }

    /// Adds Gaussian noise of the given std-dev to the aggregated delta.
    ///
    /// # Panics
    ///
    /// Panics if `noise_std < 0`.
    pub fn with_noise(mut self, noise_std: f64) -> Self {
        assert!(noise_std >= 0.0, "noise std must be non-negative");
        self.noise_std = noise_std;
        self
    }

    /// The clipping bound.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

/// Clips and accumulates leaf chunk `c`'s updates into `row` — one leaf of
/// the reduction tree. Updates within the bound accumulate directly; the
/// rest accumulate their `f32`-rounded rescaled coordinates (exactly what
/// averaging an explicitly clipped copy would have summed). No clipped
/// copies are materialized.
fn clip_leaf(updates: &[ClientUpdate], bound: f64, c: usize, row: &mut [f64]) {
    let dim = row.len();
    let lo = c * MEAN_CHUNK;
    let hi = (lo + MEAN_CHUNK).min(updates.len());
    for u in &updates[lo..hi] {
        assert_eq!(u.delta.len(), dim, "update dimension mismatch");
        let norm = kernels::sq_l2_norm(&u.delta).sqrt();
        if norm > bound {
            kernels::acc_scaled_f32(row, &u.delta, (bound / norm) as f32);
        } else {
            kernels::acc_add(row, &u.delta);
        }
    }
}

impl NormBound {
    /// Adds the optional Gaussian perturbation (serial — the noise stream
    /// must consume `rng` in coordinate order regardless of worker count).
    fn add_noise(&self, out: &mut [f32], rng: &mut StdRng) {
        if self.noise_std > 0.0 {
            for v in out.iter_mut() {
                *v += (self.noise_std * standard_normal(rng)) as f32;
            }
        }
    }
}

impl Aggregator for NormBound {
    fn name(&self) -> &'static str {
        "norm-bound"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, rng: &mut StdRng) -> Vec<f32> {
        let mut out = vec![0.0f32; dim];
        self.aggregate_into(updates, &mut out, rng);
        out
    }

    fn aggregate_into(&mut self, updates: &[ClientUpdate], out: &mut [f32], rng: &mut StdRng) {
        let bound = self.bound;
        let mut acc = std::mem::take(&mut self.acc);
        tree_reduce_into(updates.len(), out, &mut acc, |c, row| {
            clip_leaf(updates, bound, c, row);
        });
        self.acc = acc;
        self.add_noise(out, rng);
    }

    fn aggregate_pooled(
        &mut self,
        updates: &[ClientUpdate],
        out: &mut [f32],
        rng: &mut StdRng,
        pool: &WorkerPool,
    ) {
        let bound = self.bound;
        let mut acc = std::mem::take(&mut self.acc);
        tree_reduce_pooled_into(updates.len(), out, &mut acc, pool, |c, row| {
            clip_leaf(updates, bound, c, row);
        });
        self.acc = acc;
        self.add_noise(out, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use collapois_stats::geometry::l2_norm;
    use rand::SeedableRng;

    #[test]
    fn clips_each_update() {
        let mut agg = NormBound::new(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[30.0, 40.0]]); // norm 50 -> clipped to 1
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!((l2_norm(&out) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn output_norm_at_most_bound() {
        let mut agg = NormBound::new(2.0);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[10.0, 0.0], &[0.0, 10.0], &[-10.0, 0.0]]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(l2_norm(&out) <= 2.0 + 1e-6);
    }

    #[test]
    fn small_updates_pass_unchanged() {
        let mut agg = NormBound::new(100.0);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(agg.aggregate(&us, 2, &mut rng), vec![2.0, 3.0]);
    }

    #[test]
    fn pooled_clip_average_matches_serial_bitwise() {
        // Mix of clipped and unclipped updates across several tree leaves.
        let us: Vec<ClientUpdate> = (0..21)
            .map(|i| {
                let scale = if i % 3 == 0 { 10.0 } else { 0.1 };
                let delta: Vec<f32> = (0..7)
                    .map(|j| ((i * 11 + j * 3) as f32).sin() * scale)
                    .collect();
                ClientUpdate::new(i, delta, 10)
            })
            .collect();
        let mut agg = NormBound::new(1.5);
        let mut rng = StdRng::seed_from_u64(0);
        let serial = agg.aggregate(&us, 7, &mut rng);
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let mut out = vec![0.0f32; 7];
            let mut rng = StdRng::seed_from_u64(0);
            agg.aggregate_pooled(&us, &mut out, &mut rng, &pool);
            let a: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "workers={workers}");
        }
    }

    #[test]
    fn noise_perturbs_output() {
        let mut agg = NormBound::new(1.0).with_noise(0.1);
        let us = updates(&[&[0.0, 0.0]]);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let a = agg.aggregate(&us, 2, &mut r1);
        let b = agg.aggregate(&us, 2, &mut r2);
        assert_ne!(a, b);
    }
}
