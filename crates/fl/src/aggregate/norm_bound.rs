//! Norm bounding [Sun et al., 2019]: clip each update's l2 norm, average,
//! optionally add Gaussian noise.

use super::Aggregator;
use crate::update::ClientUpdate;
use collapois_nn::kernels;
use collapois_stats::distribution::standard_normal;
use rand::rngs::StdRng;

/// NormBound defense: per-update l2 clipping plus optional noise.
#[derive(Debug, Clone, Copy)]
pub struct NormBound {
    bound: f64,
    noise_std: f64,
}

impl NormBound {
    /// Creates the defense with the given clipping bound (no noise).
    ///
    /// # Panics
    ///
    /// Panics if `bound <= 0`.
    pub fn new(bound: f64) -> Self {
        assert!(bound > 0.0, "bound must be positive");
        Self {
            bound,
            noise_std: 0.0,
        }
    }

    /// Adds Gaussian noise of the given std-dev to the aggregated delta.
    ///
    /// # Panics
    ///
    /// Panics if `noise_std < 0`.
    pub fn with_noise(mut self, noise_std: f64) -> Self {
        assert!(noise_std >= 0.0, "noise std must be non-negative");
        self.noise_std = noise_std;
        self
    }

    /// The clipping bound.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

impl Aggregator for NormBound {
    fn name(&self) -> &'static str {
        "norm-bound"
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, rng: &mut StdRng) -> Vec<f32> {
        // Clip-then-average without materializing clipped copies: updates
        // within the bound accumulate directly; the rest accumulate their
        // `f32`-rounded rescaled coordinates (exactly what averaging an
        // explicitly clipped copy would have summed).
        let mut acc = vec![0.0f64; dim];
        for u in updates {
            assert_eq!(u.delta.len(), dim, "update dimension mismatch");
            let norm = kernels::sq_l2_norm(&u.delta).sqrt();
            if norm > self.bound {
                kernels::acc_scaled_f32(&mut acc, &u.delta, (self.bound / norm) as f32);
            } else {
                kernels::acc_add(&mut acc, &u.delta);
            }
        }
        let n = updates.len().max(1) as f64;
        let mut agg: Vec<f32> = acc.into_iter().map(|a| (a / n) as f32).collect();
        if self.noise_std > 0.0 {
            for v in &mut agg {
                *v += (self.noise_std * standard_normal(rng)) as f32;
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use collapois_stats::geometry::l2_norm;
    use rand::SeedableRng;

    #[test]
    fn clips_each_update() {
        let mut agg = NormBound::new(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[30.0, 40.0]]); // norm 50 -> clipped to 1
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!((l2_norm(&out) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn output_norm_at_most_bound() {
        let mut agg = NormBound::new(2.0);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[10.0, 0.0], &[0.0, 10.0], &[-10.0, 0.0]]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(l2_norm(&out) <= 2.0 + 1e-6);
    }

    #[test]
    fn small_updates_pass_unchanged() {
        let mut agg = NormBound::new(100.0);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(agg.aggregate(&us, 2, &mut rng), vec![2.0, 3.0]);
    }

    #[test]
    fn noise_perturbs_output() {
        let mut agg = NormBound::new(1.0).with_noise(0.1);
        let us = updates(&[&[0.0, 0.0]]);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let a = agg.aggregate(&us, 2, &mut r1);
        let b = agg.aggregate(&us, 2, &mut r2);
        assert_ne!(a, b);
    }
}
