//! Krum and Multi-Krum [Blanchard et al., NeurIPS 2017].
//!
//! Krum scores each update by the sum of squared distances to its
//! `n − f − 2` nearest neighbours and selects the lowest-scoring update;
//! Multi-Krum averages the `m` best. Under highly non-IID data the selected
//! update is unrepresentative of most clients, which is exactly the
//! Benign-AC collapse the paper reports (§V, "Standard defenses … lead to
//! substantial drops in Benign AC").

use super::Aggregator;
use crate::update::{tree_reduce_into, ClientUpdate, MEAN_CHUNK};
use collapois_nn::kernels;
use collapois_runtime::pool::{WorkerArenas, WorkerPool};
use rand::rngs::StdRng;

/// Krum / Multi-Krum aggregation.
#[derive(Debug, Clone, Copy)]
pub struct Krum {
    /// Assumed number of malicious clients `f`.
    assumed_malicious: usize,
    /// Number of selected updates `m` (1 = classic Krum).
    select: usize,
}

impl Krum {
    /// Classic Krum (selects a single update).
    pub fn new(assumed_malicious: usize) -> Self {
        Self {
            assumed_malicious,
            select: 1,
        }
    }

    /// Multi-Krum selecting (and averaging) the best `select` updates.
    ///
    /// # Panics
    ///
    /// Panics if `select == 0`.
    pub fn multi(assumed_malicious: usize, select: usize) -> Self {
        assert!(select > 0, "must select at least one update");
        Self {
            assumed_malicious,
            select,
        }
    }

    /// Krum scores for each update (lower = more central).
    ///
    /// The pairwise squared distances are computed once per unordered pair
    /// through the blocked kernel layer and mirrored; each score sorts its
    /// row and sums the `k` nearest in ascending order, so scores are
    /// exactly stable under client reordering.
    pub fn scores(&self, updates: &[ClientUpdate]) -> Vec<f64> {
        let n = updates.len();
        let k = self.neighbours(n);
        let deltas: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
        let d2 = kernels::pairwise_sq_distances(&deltas);
        let mut scores = Vec::with_capacity(n);
        let mut dists = Vec::with_capacity(n.saturating_sub(1));
        for i in 0..n {
            dists.clear();
            dists.extend((0..n).filter(|&j| j != i).map(|j| d2[i * n + j]));
            dists.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
            scores.push(dists.iter().take(k).sum());
        }
        scores
    }

    /// Row-sharded [`Krum::scores`]: each score depends only on its own row
    /// of the distance matrix, so rows fan out over `pool`'s lanes into
    /// per-lane scratch. Bitwise identical to the serial path — the
    /// distance kernel is exactly symmetric, so recomputing a row equals
    /// mirroring the triangle.
    pub fn scores_pooled(&self, updates: &[ClientUpdate], pool: &WorkerPool) -> Vec<f64> {
        let n = updates.len();
        let k = self.neighbours(n);
        let deltas: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
        let deltas = deltas.as_slice();
        let mut scores = vec![0.0f64; n];
        let mut arenas: WorkerArenas<RowScratch> = WorkerArenas::new();
        pool.for_chunks_mut_with_arena(
            &mut arenas,
            &mut scores,
            1,
            || RowScratch {
                row: vec![0.0; n],
                dists: Vec::with_capacity(n.saturating_sub(1)),
            },
            |i, slot, s| {
                kernels::pairwise_sq_distances_row_into(deltas, i, &mut s.row);
                s.dists.clear();
                s.dists.extend(
                    s.row
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, &d)| d),
                );
                s.dists
                    .sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
                slot[0] = s.dists.iter().take(k).sum();
            },
        );
        scores
    }

    /// Number of neighbours each score sums: `n − f − 2`, at least 1.
    fn neighbours(&self, n: usize) -> usize {
        n.saturating_sub(self.assumed_malicious + 2)
            .max(1)
            .min(n.saturating_sub(1))
    }

    /// Selection order (ascending score, stable) and the mean of the best
    /// `select` updates via the fixed-shape reduction tree.
    fn select_and_average(&self, updates: &[ClientUpdate], scores: &[f64], out: &mut [f32]) {
        let mut order: Vec<usize> = (0..updates.len()).collect();
        order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
        order.truncate(self.select.min(updates.len()));
        let chosen = order.as_slice();
        let mut acc = Vec::new();
        tree_reduce_into(chosen.len(), out, &mut acc, |c, row| {
            let lo = c * MEAN_CHUNK;
            let hi = (lo + MEAN_CHUNK).min(chosen.len());
            for &idx in &chosen[lo..hi] {
                kernels::acc_add(row, &updates[idx].delta);
            }
        });
    }
}

/// Per-lane scratch for [`Krum::scores_pooled`]: one distance row plus the
/// sort buffer, reused across the lane's rows.
struct RowScratch {
    row: Vec<f64>,
    dists: Vec<f64>,
}

impl Aggregator for Krum {
    fn name(&self) -> &'static str {
        if self.select == 1 {
            "krum"
        } else {
            "multi-krum"
        }
    }

    fn aggregate(&mut self, updates: &[ClientUpdate], dim: usize, _rng: &mut StdRng) -> Vec<f32> {
        if updates.is_empty() {
            return vec![0.0; dim];
        }
        if updates.len() == 1 {
            return updates[0].delta.clone();
        }
        let scores = self.scores(updates);
        let mut out = vec![0.0f32; dim];
        self.select_and_average(updates, &scores, &mut out);
        out
    }

    fn aggregate_pooled(
        &mut self,
        updates: &[ClientUpdate],
        out: &mut [f32],
        _rng: &mut StdRng,
        pool: &WorkerPool,
    ) {
        if updates.is_empty() {
            out.fill(0.0);
            return;
        }
        if updates.len() == 1 {
            out.copy_from_slice(&updates[0].delta);
            return;
        }
        let scores = self.scores_pooled(updates, pool);
        self.select_and_average(updates, &scores, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::testutil::updates;
    use rand::SeedableRng;

    #[test]
    fn output_is_one_of_the_inputs() {
        let mut agg = Krum::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[0.0, 0.0], &[0.1, 0.1], &[0.05, 0.0], &[9.0, 9.0]]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(
            us.iter().any(|u| u.delta == out),
            "krum must select an input"
        );
    }

    #[test]
    fn rejects_obvious_outlier() {
        let mut agg = Krum::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        // Three clustered benign updates, one far-away malicious one.
        let us = updates(&[&[0.0, 0.0], &[0.1, 0.1], &[0.05, 0.0], &[9.0, 9.0]]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert!(out[0] < 1.0, "outlier must not be selected: {out:?}");
    }

    #[test]
    fn selects_coordinated_cluster_when_it_is_tightest() {
        // CollaPois' key property: perfectly aligned malicious updates form
        // the tightest cluster, so Krum selects them under non-IID scatter.
        let mut agg = Krum::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[
            &[5.0, 5.0],
            &[5.0, 5.0],
            &[5.0, 5.0], // coordinated attackers
            &[0.0, 4.0],
            &[-4.0, 1.0],
            &[3.0, -3.0], // scattered benign
        ]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert_eq!(out, vec![5.0, 5.0]);
    }

    #[test]
    fn multi_krum_averages_selection() {
        let mut agg = Krum::multi(0, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let us = updates(&[&[0.0, 0.0], &[1.0, 1.0], &[100.0, 100.0]]);
        let out = agg.aggregate(&us, 2, &mut rng);
        assert_eq!(out, vec![0.5, 0.5]);
    }

    #[test]
    fn pooled_scores_and_aggregate_match_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let us: Vec<ClientUpdate> = (0..13)
            .map(|i| {
                let delta: Vec<f32> = (0..9).map(|j| ((i * 17 + j * 5) as f32).sin()).collect();
                ClientUpdate::new(i, delta, 10)
            })
            .collect();
        let mut agg = Krum::multi(2, 3);
        let serial_scores = agg.scores(&us);
        let serial = agg.aggregate(&us, 9, &mut rng);
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let pooled_scores = agg.scores_pooled(&us, &pool);
            let s: Vec<u64> = serial_scores.iter().map(|v| v.to_bits()).collect();
            let p: Vec<u64> = pooled_scores.iter().map(|v| v.to_bits()).collect();
            assert_eq!(s, p, "scores diverge at workers={workers}");
            let mut out = vec![0.0f32; 9];
            agg.aggregate_pooled(&us, &mut out, &mut rng, &pool);
            let a: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "aggregate diverges at workers={workers}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let mut agg = Krum::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(agg.aggregate(&[], 2, &mut rng), vec![0.0, 0.0]);
        let single = updates(&[&[2.0, 3.0]]);
        assert_eq!(agg.aggregate(&single, 2, &mut rng), vec![2.0, 3.0]);
    }
}
