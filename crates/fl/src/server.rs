//! The federated round loop with the adversary hook.
//!
//! Each round (Algorithm 1 lines 4–14): sample clients with probability `q`,
//! let benign clients compute local updates via the configured
//! [`Personalization`] strategy, let the [`Adversary`] craft malicious
//! updates for sampled compromised clients, aggregate with the configured
//! [`Aggregator`], and apply `θ ← θ + λ·Δ`.
//!
//! Execution is delegated to the `collapois-runtime` engine:
//!
//! * every RNG draw comes from a stream derived as
//!   `mix(run_seed, domain, round, client)` ([`collapois_runtime::seed`]),
//!   so results are independent of execution order;
//! * benign local training fans out over a [`WorkerPool`] — `workers = N`
//!   is bit-identical to `workers = 1` because strategies follow the
//!   compute/commit contract of [`Personalization`];
//! * every round emits structured [`TraceEvent`]s into a [`TraceLog`], and
//!   the [`RoundRecord`] handed to callers is rebuilt from those events so
//!   live runs and `--trace` files expose the same data;
//! * [`FlServer::snapshot`]/[`FlServer::restore`] round-trip the mutable
//!   run state through the versioned checkpoint codec for kill/resume.

use crate::aggregate::{Aggregator, FedBuff};
use crate::config::FlConfig;
use crate::metrics::{self, ClientMetrics};
use crate::monitor::ShiftDetector;
use crate::personalize::{LocalOutcome, Personalization};
use crate::profile::PhaseProfile;
use crate::scratch::ClientScratch;
use crate::sim::VersionStore;
use crate::update::ClientUpdate;
use collapois_data::federated::FederatedDataset;
use collapois_data::poison::BackdoorEval;
use collapois_data::sample::Dataset;
use collapois_defense::fine_pruning::fine_prune;
use collapois_nn::model::Sequential;
use collapois_nn::zoo::ModelSpec;
use collapois_runtime::checkpoint::{self, CheckpointError, Snapshot};
use collapois_runtime::fault::{ClientFault, FaultPlan};
use collapois_runtime::pool::{WorkerArenas, WorkerPool};
use collapois_runtime::seed;
use collapois_runtime::sim::{Completion, SimDriver, SimHandler, SimPlan, SimSummary, Ticks};
use collapois_runtime::trace::{TraceEvent, TraceLog};
use collapois_stats::Binomial;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Bounded attempts for one checkpoint write before giving up on the
/// snapshot (a skipped snapshot only widens the resume gap — it must not
/// kill the run).
const CHECKPOINT_WRITE_ATTEMPTS: usize = 3;
/// Base backoff between checkpoint-write attempts, doubled per retry.
const CHECKPOINT_RETRY_BACKOFF_MS: u64 = 2;
/// Client-count threshold at which round sampling switches from the
/// per-client Bernoulli sweep to the binomial-count fast path. Everything
/// below keeps the original draw sequence (quick-scale event hashes are
/// pinned to it); at and above, cohorts are new scenario families.
const BINOMIAL_SAMPLING_MIN: usize = 1024;

/// An attacker controlling a fixed set of compromised clients.
///
/// The server calls [`Adversary::craft_update`] instead of benign local
/// training whenever a compromised client is sampled, and
/// [`Adversary::observe_global`] after every aggregation (black-box threat
/// model: the attacker sees exactly what its compromised clients see).
pub trait Adversary: std::fmt::Debug {
    /// Ids of the compromised clients.
    fn compromised(&self) -> &[usize];

    /// Malicious delta for compromised client `client_id` at `round`, given
    /// the current global parameters (what the client just received). The
    /// `rng` is the client's derived `Domain::Adversary` stream.
    fn craft_update(
        &mut self,
        client_id: usize,
        global: &[f32],
        round: usize,
        rng: &mut StdRng,
    ) -> Vec<f32>;

    /// Called after each aggregation with the new global parameters.
    fn observe_global(&mut self, _global: &[f32], _round: usize) {}

    /// Short name for report tables.
    fn name(&self) -> &'static str;
}

/// Per-round record for analysis and plotting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Sampled client ids (benign and compromised).
    pub sampled: Vec<usize>,
    /// How many of the sampled clients were compromised.
    pub num_malicious: usize,
    /// l2 norms of benign updates this round.
    pub benign_norms: Vec<f64>,
    /// l2 norms of malicious updates this round.
    pub malicious_norms: Vec<f64>,
    /// The raw updates (kept only when update collection is enabled).
    pub updates: Option<Vec<ClientUpdate>>,
    /// The global parameters the round started from (kept only when update
    /// collection is enabled).
    pub global_before: Option<Vec<f32>>,
    /// Sampled clients the fault plan removed before training (dropouts and
    /// deadline-shed stragglers), in sampled order.
    pub dropped: Vec<usize>,
}

impl RoundRecord {
    /// Rebuilds a record from a round's `RoundStarted`/`RoundCompleted`
    /// trace-event pair. Returns `None` unless the events are that pair
    /// and agree on the round index.
    pub fn from_trace(started: &TraceEvent, completed: &TraceEvent) -> Option<Self> {
        match (started, completed) {
            (
                TraceEvent::RoundStarted { round, sampled, .. },
                TraceEvent::RoundCompleted {
                    round: completed_round,
                    num_malicious,
                    benign_norms,
                    malicious_norms,
                    ..
                },
            ) if round == completed_round => Some(Self {
                round: *round,
                sampled: sampled.clone(),
                num_malicious: *num_malicious,
                benign_norms: benign_norms.clone(),
                malicious_norms: malicious_norms.clone(),
                updates: None,
                global_before: None,
                dropped: Vec::new(),
            }),
            _ => None,
        }
    }
}

/// Rebuilds every round's [`RoundRecord`] from a trace-event sequence (as
/// produced live by [`FlServer::trace_events`] or read back from a trace
/// file). Unpaired or interleaved round events are skipped.
pub fn round_records_from_events(events: &[TraceEvent]) -> Vec<RoundRecord> {
    let mut records = Vec::new();
    let mut pending: Option<&TraceEvent> = None;
    let mut dropped: Vec<usize> = Vec::new();
    for event in events {
        match event {
            TraceEvent::RoundStarted { .. } => {
                pending = Some(event);
                dropped.clear();
            }
            TraceEvent::ClientDropped { client, .. } => dropped.push(*client),
            TraceEvent::RoundCompleted { .. } => {
                if let Some(started) = pending.take() {
                    if let Some(mut record) = RoundRecord::from_trace(started, event) {
                        record.dropped = std::mem::take(&mut dropped);
                        records.push(record);
                    }
                }
            }
            _ => {}
        }
    }
    records
}

/// Simulates in-flight corruption of a transmitted update. Touching only
/// the first element keeps the injection O(1); the server-side finite
/// check scans the whole norm regardless of where the damage lands.
fn poison_delta(delta: &mut [f32]) {
    if let Some(v) = delta.first_mut() {
        *v = f32::NAN;
    }
}

/// In-training Fine-Pruning [Liu et al., RAID 2018] schedule: every
/// `every` completed rounds the server ranks the global model's hidden
/// units by mean activation on its held-out clean split and zeroes the
/// least-activated `fraction`. Deterministic and worker-count-invariant:
/// the clean split is a fixed pool of client test splits in id order, and
/// the pruning pass itself is sequential.
#[derive(Debug, Clone)]
struct FinePruneSchedule {
    fraction: f64,
    every: usize,
    clean: Dataset,
}

/// The federated server simulation.
#[derive(Debug)]
pub struct FlServer {
    cfg: FlConfig,
    fed: FederatedDataset,
    aggregator: Box<dyn Aggregator>,
    personalization: Box<dyn Personalization>,
    global: Vec<f32>,
    scratch: Sequential,
    round: usize,
    collect_updates: bool,
    workers: WorkerPool,
    /// Per-worker training arenas, alive across rounds (and checkpoints —
    /// they are pure scratch and never serialized).
    arenas: WorkerArenas<ClientScratch>,
    /// Recycled delta buffers handed to benign training jobs and reclaimed
    /// after aggregation (unless update collection keeps them).
    update_pool: Vec<Vec<f32>>,
    /// Reusable aggregation output buffer.
    agg_buf: Vec<f32>,
    /// Reusable benign-job input buffer for the training fan-out.
    job_buf: Vec<(usize, Vec<f32>)>,
    /// Reusable fan-out output buffer (one outcome per benign job).
    outcome_buf: Vec<(usize, LocalOutcome)>,
    /// Reusable round-update assembly buffer (recycled unless update
    /// collection keeps the round's updates).
    updates_buf: Vec<ClientUpdate>,
    /// Lane-pinned scratch models for pooled client evaluation.
    eval_arenas: WorkerArenas<Sequential>,
    /// Cumulative per-phase wall-clock, drained by
    /// [`FlServer::take_profile`].
    profile: PhaseProfile,
    trace: TraceLog,
    monitor: Option<ShiftDetector>,
    /// Deterministic fault-injection plan applied to every round (the
    /// default [`FaultPlan::none`] plan leaves the round loop untouched).
    fault_plan: FaultPlan,
    /// In-training Fine-Pruning schedule (None = defense off).
    fine_prune: Option<FinePruneSchedule>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: usize,
    run_started: bool,
    run_start: Option<Instant>,
    rounds_executed: usize,
    resumed_from: Option<u32>,
}

impl FlServer {
    /// Builds a server over the federated dataset.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FlConfig::validate`]).
    pub fn new(
        cfg: FlConfig,
        fed: FederatedDataset,
        aggregator: Box<dyn Aggregator>,
        mut personalization: Box<dyn Personalization>,
    ) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid FlConfig: {e}"));
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scratch = cfg.model.build(&mut rng);
        let global = scratch.params();
        personalization.init(fed.num_clients(), global.len());
        Self {
            cfg,
            fed,
            aggregator,
            personalization,
            global,
            scratch,
            round: 0,
            collect_updates: false,
            workers: WorkerPool::new(1),
            arenas: WorkerArenas::new(),
            update_pool: Vec::new(),
            agg_buf: Vec::new(),
            job_buf: Vec::new(),
            outcome_buf: Vec::new(),
            updates_buf: Vec::new(),
            eval_arenas: WorkerArenas::new(),
            profile: PhaseProfile::default(),
            trace: TraceLog::in_memory(),
            monitor: None,
            fault_plan: FaultPlan::none(),
            fine_prune: None,
            checkpoint_dir: None,
            checkpoint_every: 0,
            run_started: false,
            run_start: None,
            rounds_executed: 0,
            resumed_from: None,
        }
    }

    /// Enables keeping the raw updates in each [`RoundRecord`] (used by the
    /// gradient-angle analyses of Figs. 3 and 6).
    pub fn collect_updates(&mut self, enable: bool) {
        self.collect_updates = enable;
    }

    /// Enables in-training Fine-Pruning: every `every` completed rounds,
    /// prune the `fraction` least-activated hidden units of the global model
    /// against the server's held-out clean split (the pooled test splits of
    /// the first clients, which poisoning never touches — adversaries
    /// poison their local *training* copies). Applies only to the
    /// synchronous round loop; the buffered-async simulator ignores the
    /// configured defense (documented limitation shared by all defenses).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1)`, `every` is 0, the model is
    /// not a single-hidden-layer MLP, or no client has test data.
    pub fn enable_fine_pruning(&mut self, fraction: f64, every: usize) {
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
        assert!(every > 0, "pruning cadence must be positive");
        assert!(
            matches!(&self.cfg.model, ModelSpec::Mlp { hidden, .. } if hidden.len() == 1),
            "fine-pruning supports single-hidden-layer MLPs"
        );
        // Fixed clean pool: test splits of the first clients in id order,
        // capped so paper-scale cohorts do not materialize every shard.
        let mut clean = Dataset::empty(self.fed.sample_shape(), self.fed.num_classes());
        for id in 0..self.fed.num_clients().min(64) {
            clean.extend_from(&self.fed.client(id).test);
        }
        assert!(!clean.is_empty(), "no held-out clean data to prune against");
        self.fine_prune = Some(FinePruneSchedule {
            fraction,
            every,
            clean,
        });
    }

    /// Sets the worker-thread count for benign-client fan-out. Any count
    /// produces bit-identical results; `0` is clamped to `1`.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = WorkerPool::new(workers);
    }

    /// Current worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers.workers()
    }

    /// Evaluates every benign client (Benign AC + Attack SR) on the
    /// persistent worker pool, reusing lane-pinned scratch models across
    /// calls so periodic evaluation allocates nothing in steady state.
    /// Wall-clock is accounted to the profile's `eval` phase.
    pub fn evaluate_clients(
        &mut self,
        model_spec: &ModelSpec,
        backdoor: &dyn BackdoorEval,
        target_class: usize,
        excluded: &[usize],
    ) -> Vec<ClientMetrics> {
        let eval_start = Instant::now();
        let pers: &dyn Personalization = self.personalization.as_ref();
        let global = &self.global;
        let out = metrics::evaluate_clients_pooled(
            &self.fed,
            model_spec,
            |id| pers.eval_params(id, global),
            backdoor,
            target_class,
            excluded,
            &self.workers,
            &mut self.eval_arenas,
        );
        self.profile.eval_ms += eval_start.elapsed().as_secs_f64() * 1e3;
        let (wait_ns, dispatch_ns) = self.workers.take_sync_ns();
        self.profile.barrier_ms += wait_ns as f64 * 1e-6;
        self.profile.dispatch_ms += dispatch_ns as f64 * 1e-6;
        let (steals, stolen) = self.workers.take_steal_stats();
        self.profile.steals += steals;
        self.profile.stolen_items += stolen;
        out
    }

    /// Drains the per-phase wall-clock profile accumulated since the last
    /// call (or since construction).
    pub fn take_profile(&mut self) -> PhaseProfile {
        std::mem::take(&mut self.profile)
    }

    /// Mirrors the run trace to a JSONL file (truncating it). Call before
    /// the first round; events already pushed stay in memory only.
    pub fn trace_to_file(&mut self, path: &Path) -> std::io::Result<()> {
        self.trace = TraceLog::to_file(path)?;
        Ok(())
    }

    /// The structured trace events emitted so far.
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.trace.events()
    }

    /// Attaches a shift detector; alerts become `ShiftAlert` trace events.
    pub fn enable_monitor(&mut self, detector: ShiftDetector) {
        self.monitor = Some(detector);
    }

    /// Writes a snapshot to `dir` every `every` completed rounds
    /// (`every = 0` disables checkpointing).
    pub fn enable_checkpoints(&mut self, dir: impl Into<PathBuf>, every: usize) {
        self.checkpoint_dir = Some(dir.into());
        self.checkpoint_every = every;
    }

    /// Installs the deterministic fault plan applied from the next round on.
    ///
    /// The plan participates in [`FlServer::config_hash`], so checkpoints
    /// taken under one fault regime refuse to resume under another — set the
    /// plan *before* [`FlServer::resume_latest`].
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid (see [`FaultPlan::validate`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        plan.validate()
            .unwrap_or_else(|e| panic!("invalid FaultPlan: {e}"));
        self.fault_plan = plan;
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Current global parameters.
    pub fn global(&self) -> &[f32] {
        self.global.as_slice()
    }

    /// Overwrites the global parameters (used to warm-start experiments).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn set_global(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.global.len(), "global dimension mismatch");
        self.global.copy_from_slice(params);
    }

    /// The configuration.
    pub fn config(&self) -> &FlConfig {
        &self.cfg
    }

    /// The federated dataset.
    pub fn dataset(&self) -> &FederatedDataset {
        &self.fed
    }

    /// The personalization strategy (for evaluation).
    pub fn personalization(&self) -> &dyn Personalization {
        self.personalization.as_ref()
    }

    /// Completed round count (the next round to execute).
    pub fn rounds_done(&self) -> usize {
        self.round
    }

    /// FNV-1a hash of the configuration's debug representation (including
    /// the fault plan); stored in snapshots so a checkpoint cannot silently
    /// resume a different run or a different fault regime.
    pub fn config_hash(&self) -> u64 {
        checkpoint::config_hash(&format!("{:?}|fault={:?}", self.cfg, self.fault_plan))
    }

    /// Captures the mutable run state (global model, round cursor,
    /// personalization state) as a codec-ready [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            run_seed: self.cfg.seed,
            config_hash: self.config_hash(),
            round: self.round as u32,
            global: self.global.clone(),
            client_states: self.personalization.export_state(),
        }
    }

    /// Restores run state from a snapshot taken by [`FlServer::snapshot`]
    /// on an identically-configured server.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), CheckpointError> {
        snap.require_config(self.config_hash())?;
        if snap.global.len() != self.global.len() {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot holds {} parameters, model has {}",
                snap.global.len(),
                self.global.len()
            )));
        }
        self.global.copy_from_slice(&snap.global);
        self.personalization
            .import_state(snap.client_states.clone());
        self.round = snap.round as usize;
        self.resumed_from = Some(snap.round);
        Ok(())
    }

    /// Restores from the newest *intact* checkpoint in `dir`, if any.
    /// Returns the round the run will resume from.
    ///
    /// A torn or corrupt newest file (e.g. a crash mid-write on a
    /// filesystem without atomic rename) is skipped and the next-newest
    /// checkpoint is tried, so a damaged tail never strands an otherwise
    /// resumable run. Only when *every* checkpoint is damaged does the last
    /// decode error surface. A config-hash mismatch is a refusal, not
    /// damage, and is returned immediately.
    pub fn resume_latest(&mut self, dir: &Path) -> Result<Option<u32>, CheckpointError> {
        let mut last_err: Option<CheckpointError> = None;
        for (_, path) in checkpoint::checkpoints_by_round(dir).into_iter().rev() {
            match Snapshot::load(&path) {
                Ok(snap) => {
                    self.restore(&snap)?;
                    return Ok(Some(snap.round));
                }
                Err(e) => last_err = Some(e),
            }
        }
        match last_err {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }

    /// Emits the `RunCompleted` trace event and flushes the trace sink.
    /// Call once after the round loop; a no-op if no round ever ran.
    pub fn finish_run(&mut self) {
        if !self.run_started {
            return;
        }
        let elapsed_ms = self
            .run_start
            .map(|t| t.elapsed().as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        self.trace.push(TraceEvent::RunCompleted {
            rounds_executed: self.rounds_executed,
            elapsed_ms,
        });
        self.trace.flush();
        self.run_started = false;
    }

    fn ensure_run_started(&mut self) {
        if self.run_started {
            return;
        }
        self.run_started = true;
        self.run_start = Some(Instant::now());
        self.trace.push(TraceEvent::RunStarted {
            run_seed: self.cfg.seed,
            config_hash: self.config_hash(),
            num_clients: self.fed.num_clients(),
            rounds: self.cfg.rounds,
            workers: self.workers.workers(),
            aggregator: self.aggregator.name().to_string(),
            resumed_from: self.resumed_from,
        });
    }

    /// Samples the round's client set: each client independently with
    /// probability `q`, re-drawn until non-empty.
    ///
    /// Below [`BINOMIAL_SAMPLING_MIN`] clients this is the original
    /// Bernoulli sweep, verbatim — quick-scale event hashes are pinned to
    /// its exact draw sequence. At paper scale the sweep's `O(num_clients)`
    /// draws per round dominate small rounds, so the cohort size is drawn
    /// once from `Binomial(num_clients, q)` and that many distinct ids are
    /// picked with Floyd's algorithm — `O(k log k)` total, same marginal
    /// distribution, ascending order either way.
    fn sample_clients(rng: &mut StdRng, num_clients: usize, q: f64) -> Vec<usize> {
        if num_clients < BINOMIAL_SAMPLING_MIN {
            loop {
                let sampled: Vec<usize> = (0..num_clients).filter(|_| rng.gen_bool(q)).collect();
                if !sampled.is_empty() {
                    return sampled;
                }
            }
        }
        let binom = Binomial::new(num_clients as u64, q).expect("sample_rate validated in [0, 1]");
        let k = loop {
            let k = binom.sample(rng) as usize;
            if k > 0 {
                break k;
            }
        };
        let mut chosen = std::collections::BTreeSet::new();
        for j in (num_clients - k)..num_clients {
            let t = rng.gen_range(0..=j);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }

    /// Runs one federated round, optionally under attack.
    ///
    /// When a fault plan is active, sampled clients may be dropped (crash
    /// dropout, or stragglers whose virtual delay exceeds the round
    /// deadline) or have their transmitted update corrupted in flight.
    /// Every fault verdict is drawn on this thread from a per-(round,
    /// client) derived stream, so the schedule is reproducible and
    /// invariant to worker count.
    pub fn run_round(&mut self, adversary: Option<&mut (dyn Adversary + '_)>) -> RoundRecord {
        self.ensure_run_started();
        let round_u64 = self.round as u64;
        let run_seed = self.cfg.seed;
        let mut sampling_rng = seed::sampling_rng(run_seed, round_u64);
        let sampled = Self::sample_clients(
            &mut sampling_rng,
            self.fed.num_clients(),
            self.cfg.sample_rate,
        );

        let plan = self.fault_plan;
        if plan.dropout <= 0.0 && plan.straggler <= 0.0 && plan.corrupt <= 0.0 {
            return self.execute_round(sampled, None, Vec::new(), Vec::new(), adversary);
        }
        let mut cohort = Vec::with_capacity(sampled.len());
        let mut dropped = Vec::new();
        let mut corrupt = Vec::new();
        for &cid in &sampled {
            match plan.client_fault(run_seed, round_u64, cid) {
                ClientFault::None => cohort.push(cid),
                ClientFault::Dropout => dropped.push((cid, "dropout", 0.0)),
                ClientFault::Straggler { delay_ms, shed } => {
                    if shed {
                        dropped.push((cid, "straggler", delay_ms));
                    } else {
                        cohort.push(cid);
                    }
                }
                ClientFault::Corrupt => {
                    corrupt.push(cid);
                    cohort.push(cid);
                }
            }
        }
        self.execute_round(sampled, Some(cohort), dropped, corrupt, adversary)
    }

    /// Runs one round over an explicit participant set, bypassing both
    /// client sampling and the fault plan. This exposes the degradation
    /// policy's core invariant for testing: a faulted round is bit-identical
    /// to a fault-free round over the surviving cohort, because client
    /// training streams are keyed by `(round, client)` and never by cohort
    /// shape.
    pub fn run_round_with_cohort(
        &mut self,
        cohort: &[usize],
        adversary: Option<&mut (dyn Adversary + '_)>,
    ) -> RoundRecord {
        self.ensure_run_started();
        self.execute_round(cohort.to_vec(), None, Vec::new(), Vec::new(), adversary)
    }

    /// The round body shared by [`FlServer::run_round`] and
    /// [`FlServer::run_round_with_cohort`]. `cohort` is the subset of
    /// `sampled` that actually participates (`None` means everyone);
    /// `dropped` carries `(client, cause, delay_ms)` fault verdicts for the
    /// trace; `corrupt` lists cohort members whose transmitted update is
    /// poisoned in flight.
    fn execute_round(
        &mut self,
        sampled: Vec<usize>,
        cohort: Option<Vec<usize>>,
        dropped: Vec<(usize, &'static str, f64)>,
        corrupt: Vec<usize>,
        mut adversary: Option<&mut (dyn Adversary + '_)>,
    ) -> RoundRecord {
        let round_start = Instant::now();
        let round = self.round;
        let round_u64 = round as u64;
        let run_seed = self.cfg.seed;
        let dim = self.global.len();
        let participants: &[usize] = cohort.as_deref().unwrap_or(&sampled);

        let compromised: Vec<usize> = match adversary.as_ref() {
            Some(adv) => sampled
                .iter()
                .copied()
                .filter(|cid| adv.compromised().contains(cid))
                .collect(),
            None => Vec::new(),
        };
        // Single clone per vector: the event owns copies, the locals stay
        // live for the round body and move into the returned record.
        self.trace.push(TraceEvent::RoundStarted {
            round,
            sampled: sampled.clone(),
            compromised: compromised.clone(),
        });
        let mut dropped_ids = Vec::with_capacity(dropped.len());
        for (client, cause, delay_ms) in dropped {
            match cause {
                "dropout" => self.profile.dropped_clients += 1,
                _ => self.profile.shed_stragglers += 1,
            }
            self.trace.push(TraceEvent::ClientDropped {
                round,
                client,
                cause: cause.to_string(),
                delay_ms,
            });
            dropped_ids.push(client);
        }

        let mut setup_rng = seed::round_setup_rng(run_seed, round_u64);
        self.personalization
            .begin_round(&self.global, &mut setup_rng);

        let global_before = if self.collect_updates {
            Some(self.global.clone())
        } else {
            None
        };

        // Benign training jobs, fanned over the worker pool with one
        // persistent arena per lane. Each job is paired with a recycled
        // delta buffer it fills in place; the closure only holds shared
        // borrows of the round snapshot, so all mutation is deferred to
        // commits and determinism is independent of scheduling. Job and
        // outcome buffers persist across rounds so the steady-state fan-out
        // allocates nothing.
        let fed = &self.fed;
        let update_pool = &mut self.update_pool;
        let mut jobs = std::mem::take(&mut self.job_buf);
        jobs.clear();
        jobs.extend(
            participants
                .iter()
                .copied()
                .filter(|cid| !compromised.contains(cid) && !fed.client(*cid).train.is_empty())
                .map(|cid| (cid, update_pool.pop().unwrap_or_default())),
        );
        let mut outcomes = std::mem::take(&mut self.outcome_buf);
        let pers: &dyn Personalization = self.personalization.as_ref();
        let cfg = &self.cfg;
        let global = &self.global;
        let template = &self.scratch;
        let train_start = Instant::now();
        self.workers.map_with_arena_into(
            &mut self.arenas,
            &mut jobs,
            &mut outcomes,
            || ClientScratch::for_model(template),
            move |_, (cid, buf), scratch| {
                scratch.delta = buf;
                let mut rng = seed::client_rng(run_seed, round_u64, cid);
                let out =
                    pers.local_train(cid, global, &fed.client(cid).train, cfg, scratch, &mut rng);
                (cid, out)
            },
        );
        self.profile.train_ms += train_start.elapsed().as_secs_f64() * 1e3;
        self.job_buf = jobs;

        // Assemble updates in sampled order; personalization commits land
        // in the same order, independent of worker scheduling.
        let commit_start = Instant::now();
        let mut updates = std::mem::take(&mut self.updates_buf);
        updates.clear();
        let mut benign_norms = Vec::new();
        let mut malicious_norms = Vec::new();
        let mut outcome_iter = outcomes.drain(..).peekable();
        for &cid in participants {
            if compromised.contains(&cid) {
                let adv = adversary.as_mut().expect("compromised implies adversary");
                let mut rng = seed::adversary_rng(run_seed, round_u64, cid);
                let mut delta = adv.craft_update(cid, &self.global, round, &mut rng);
                assert_eq!(
                    delta.len(),
                    dim,
                    "client {cid} produced a wrong-sized update"
                );
                if corrupt.contains(&cid) {
                    poison_delta(&mut delta);
                }
                // Simulated transport: encode/decode through the scenario's
                // codec before the finite-norm gate, so the gate and every
                // aggregator see exactly what a real receiver would.
                self.cfg.quantization.roundtrip_inplace(&mut delta);
                let update = ClientUpdate::new(cid, delta, self.fed.client(cid).train.len());
                let norm = update.norm();
                if norm.is_finite() {
                    malicious_norms.push(norm);
                    updates.push(update);
                } else {
                    self.reject_update(round, cid, corrupt.contains(&cid));
                    self.update_pool.push(update.delta);
                }
            } else if outcome_iter.peek().map(|(c, _)| *c) == Some(cid) {
                let (_, out) = outcome_iter.next().expect("peeked");
                assert_eq!(
                    out.delta.len(),
                    dim,
                    "client {cid} produced a wrong-sized update"
                );
                let mut delta = out.delta;
                if corrupt.contains(&cid) {
                    poison_delta(&mut delta);
                }
                // Same simulated transport round-trip as the malicious arm.
                self.cfg.quantization.roundtrip_inplace(&mut delta);
                let update = ClientUpdate::new(cid, delta, self.fed.client(cid).train.len());
                let norm = update.norm();
                if norm.is_finite() {
                    // Client-local state is committed only for accepted
                    // updates: a rejected client is treated exactly as if
                    // it had dropped this round.
                    self.personalization.commit(cid, out.commit);
                    benign_norms.push(norm);
                    updates.push(update);
                } else {
                    self.reject_update(round, cid, corrupt.contains(&cid));
                    self.update_pool.push(update.delta);
                }
            }
            // else: a benign client without training data — contributes
            // nothing this round.
        }
        let num_malicious = malicious_norms.len();
        drop(outcome_iter);
        self.outcome_buf = outcomes;
        self.profile.commit_ms += commit_start.elapsed().as_secs_f64() * 1e3;

        let agg_start = Instant::now();
        let mut agg = std::mem::take(&mut self.agg_buf);
        agg.resize(dim, 0.0);
        let agg_delta_norm = if updates.is_empty() {
            // Degradation policy: every participant was lost to faults (or
            // rejected before aggregation), so the round applies no update —
            // aggregation rules assume a non-empty cohort.
            0.0
        } else {
            let mut agg_rng = seed::aggregation_rng(run_seed, round_u64);
            self.aggregator
                .aggregate_pooled(&updates, &mut agg, &mut agg_rng, &self.workers);
            let lr = self.cfg.server_lr as f32;
            let mut agg_sq = 0.0f64;
            for (g, &d) in self.global.iter_mut().zip(&agg) {
                let step = lr * d;
                agg_sq += f64::from(step) * f64::from(step);
                *g += step;
            }
            self.aggregator.post_process(&mut self.global, &mut agg_rng);
            agg_sq.sqrt()
        };
        self.agg_buf = agg;
        self.profile.aggregate_ms += agg_start.elapsed().as_secs_f64() * 1e3;

        // In-training Fine-Pruning, keyed on the absolute completed-round
        // number so a resumed run prunes on exactly the same schedule. The
        // pruned model is what the adversary observes, the monitor sees,
        // and the checkpoint below records.
        if let Some(fp) = &self.fine_prune {
            if (round + 1).is_multiple_of(fp.every) {
                self.scratch.set_params(&self.global);
                let outcome =
                    fine_prune(&mut self.scratch, &self.cfg.model, &fp.clean, fp.fraction);
                self.global.copy_from_slice(&outcome.pruned_params);
            }
        }

        if let Some(adv) = adversary.as_mut() {
            adv.observe_global(&self.global, round);
        }

        if let Some(monitor) = &mut self.monitor {
            if let Some(alert) = monitor.observe(Some(&self.global), None) {
                self.trace.push(TraceEvent::ShiftAlert {
                    round: alert.round,
                    observed: alert.observed,
                    baseline_median: alert.baseline_median,
                    z_score: alert.z_score,
                });
            }
        }

        self.trace.push(TraceEvent::RoundCompleted {
            round,
            aggregator: self.aggregator.name().to_string(),
            num_malicious,
            benign_norms: benign_norms.clone(),
            malicious_norms: malicious_norms.clone(),
            agg_delta_norm,
            elapsed_ms: round_start.elapsed().as_secs_f64() * 1e3,
        });

        // Reclaim the round's delta buffers unless the caller keeps them.
        let kept_updates = if self.collect_updates {
            Some(updates)
        } else {
            for u in updates.drain(..) {
                self.update_pool.push(u.delta);
            }
            self.updates_buf = updates;
            None
        };
        let (wait_ns, dispatch_ns) = self.workers.take_sync_ns();
        self.profile.barrier_ms += wait_ns as f64 * 1e-6;
        self.profile.dispatch_ms += dispatch_ns as f64 * 1e-6;
        let (steals, stolen) = self.workers.take_steal_stats();
        self.profile.steals += steals;
        self.profile.stolen_items += stolen;
        self.profile.rounds += 1;
        let record = RoundRecord {
            round,
            sampled,
            num_malicious,
            benign_norms,
            malicious_norms,
            updates: kept_updates,
            global_before,
            dropped: dropped_ids,
        };

        self.round += 1;
        self.rounds_executed += 1;

        if self.checkpoint_every > 0 && self.round.is_multiple_of(self.checkpoint_every) {
            if let Some(dir) = self.checkpoint_dir.clone() {
                let path = checkpoint::checkpoint_path(&dir, self.round as u32);
                self.write_checkpoint_with_retry(&path);
            }
        }

        record
    }

    /// Logs a pre-aggregation rejection of a non-finite update.
    fn reject_update(&mut self, round: usize, client: usize, injected: bool) {
        self.profile.rejected_updates += 1;
        let reason = if injected {
            "injected_corruption"
        } else {
            "non_finite"
        };
        self.trace.push(TraceEvent::UpdateRejected {
            round,
            client,
            reason: reason.to_string(),
        });
    }

    /// Writes a snapshot of the current run state to `path`, surfacing any
    /// failure as a typed result instead of panicking.
    pub fn write_checkpoint(&self, path: &Path) -> Result<(), CheckpointError> {
        self.snapshot().save(path)
    }

    /// Scheduled checkpoint write with bounded retry and exponential
    /// backoff. Failures (injected by the fault plan or real I/O errors)
    /// are traced and counted; exhausting every attempt skips this
    /// snapshot — it never kills the run, it only widens the resume gap.
    fn write_checkpoint_with_retry(&mut self, path: &Path) {
        let snap = self.snapshot();
        let round = self.round;
        for attempt in 1..=CHECKPOINT_WRITE_ATTEMPTS {
            let result =
                if self
                    .fault_plan
                    .checkpoint_attempt_fails(self.cfg.seed, round as u64, attempt)
                {
                    Err(CheckpointError::Io(std::io::Error::other(
                        "injected checkpoint-write fault",
                    )))
                } else {
                    snap.save(path)
                };
            match result {
                Ok(()) => {
                    self.trace.push(TraceEvent::CheckpointSaved {
                        round,
                        path: path.display().to_string(),
                    });
                    return;
                }
                Err(e) => {
                    self.profile.checkpoint_write_failures += 1;
                    let gave_up = attempt == CHECKPOINT_WRITE_ATTEMPTS;
                    self.trace.push(TraceEvent::CheckpointWriteFailed {
                        round,
                        attempt,
                        error: e.to_string(),
                        gave_up,
                    });
                    if !gave_up {
                        std::thread::sleep(Duration::from_millis(
                            CHECKPOINT_RETRY_BACKOFF_MS << (attempt - 1),
                        ));
                    }
                }
            }
        }
    }

    /// Runs `n` rounds, returning each round's record.
    pub fn run_rounds(
        &mut self,
        n: usize,
        mut adversary: Option<&mut (dyn Adversary + '_)>,
    ) -> Vec<RoundRecord> {
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let adv = adversary.as_deref_mut();
            records.push(self.run_round(adv));
        }
        records
    }

    /// Runs the buffered-async (FedBuff) execution mode on the
    /// discrete-event simulator, as an alternative to the synchronous
    /// round loop.
    ///
    /// Clients arrive per `plan` (Poisson or trace-driven, filtered by
    /// availability churn and the concurrency cap), fetch the current
    /// global version, train against that exact snapshot for a virtual
    /// duration, and land in a buffer; the buffer flushes into the model
    /// when it holds `buffer_k` completions or the virtual deadline
    /// passes, using the staleness-weighted [`FedBuff`] merge (decay from
    /// `plan.staleness_decay`) and the configured `server_lr`.
    ///
    /// Each flush plays the role of a round: it emits
    /// `RoundStarted`/`RoundCompleted` trace events (participants in
    /// completion order) around the driver's `buffer_flushed` event and
    /// advances [`FlServer::rounds_done`], so downstream trace tooling
    /// works unchanged. Benign training streams are keyed by `(arrival
    /// index, client)` — a pure function of the virtual schedule — and
    /// flush work fans out over the worker pool through fixed-shape
    /// kernels, so two same-seed runs are bitwise identical at any worker
    /// count. The active [`FaultPlan`] composes: dropout, stragglers
    /// (extra virtual delay; the flush deadline, not the synchronous round
    /// deadline, governs shedding) and in-flight corruption all apply per
    /// arrival. Sim runs do not write checkpoints — the same-seed replay
    /// *is* the resume story.
    ///
    /// Returns the driver's event-level summary; stops after
    /// `target_flushes` flushes (or earlier if the plan's event source
    /// drains or its event cap trips).
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid or its population does not match the
    /// dataset.
    pub fn run_sim(
        &mut self,
        plan: &SimPlan,
        target_flushes: usize,
        adversary: Option<&mut (dyn Adversary + '_)>,
    ) -> SimSummary {
        assert_eq!(
            plan.num_clients,
            self.fed.num_clients(),
            "sim population must match the federated dataset"
        );
        self.ensure_run_started();
        let compromised = adversary
            .as_ref()
            .map(|a| a.compromised().to_vec())
            .unwrap_or_default();
        let mut driver = SimDriver::new(plan.clone(), self.cfg.seed, self.fault_plan)
            .unwrap_or_else(|e| panic!("invalid SimPlan: {e}"));
        // The driver needs the trace sink while the handler borrows the
        // server's engine pieces, so the log steps out of `self` for the
        // duration of the run.
        let mut trace = std::mem::take(&mut self.trace);
        let summary = {
            let mut handler = ServerSimHandler {
                run_seed: self.cfg.seed,
                base_round: self.round,
                cfg: &self.cfg,
                fed: &self.fed,
                personalization: &mut self.personalization,
                global: &mut self.global,
                template: &self.scratch,
                workers: &self.workers,
                arenas: &mut self.arenas,
                update_pool: &mut self.update_pool,
                profile: &mut self.profile,
                adversary,
                compromised,
                versions: VersionStore::new(),
                fedbuff: FedBuff::new(plan.staleness_decay),
                jobs: Vec::new(),
                outcomes: Vec::new(),
                updates: Vec::new(),
                staleness: Vec::new(),
                agg: Vec::new(),
            };
            driver.run(&mut handler, &mut trace, target_flushes as u64)
        };
        self.trace = trace;
        let flushes = summary.flushes as usize;
        self.round += flushes;
        self.rounds_executed += flushes;
        summary
    }
}

/// Flush-time state for [`FlServer::run_sim`]: borrows the server's engine
/// pieces for one simulation run and implements the driver's
/// [`SimHandler`]. Each flush mirrors the synchronous round body — benign
/// fan-out with per-lane arenas, commit in deterministic (completion)
/// order, staleness-weighted merge, `θ ← θ + λ·Δ` — against the *fetched*
/// snapshots rather than one shared round global.
struct ServerSimHandler<'a, 'b> {
    run_seed: u64,
    /// Rounds the server had completed before this sim run (flush `i`
    /// becomes round `base_round + i` in trace events and RNG keys).
    base_round: usize,
    cfg: &'a FlConfig,
    fed: &'a FederatedDataset,
    personalization: &'a mut Box<dyn Personalization>,
    global: &'a mut Vec<f32>,
    template: &'a Sequential,
    workers: &'a WorkerPool,
    arenas: &'a mut WorkerArenas<ClientScratch>,
    update_pool: &'a mut Vec<Vec<f32>>,
    profile: &'a mut PhaseProfile,
    adversary: Option<&'a mut (dyn Adversary + 'b)>,
    compromised: Vec<usize>,
    versions: VersionStore,
    fedbuff: FedBuff,
    /// `(client, arrival_index, fetched_version, delta buffer)` benign
    /// training jobs, rebuilt per flush (buffers recycled).
    jobs: Vec<(usize, u64, u64, Vec<f32>)>,
    outcomes: Vec<(usize, LocalOutcome)>,
    updates: Vec<ClientUpdate>,
    staleness: Vec<u64>,
    agg: Vec<f32>,
}

impl SimHandler for ServerSimHandler<'_, '_> {
    fn on_fetch(&mut self, _client: usize, version: u64) {
        self.versions.retain(version, self.global);
    }

    fn flush(
        &mut self,
        flush_index: u64,
        _now: Ticks,
        buffer: &[Completion],
        trace: &mut TraceLog,
    ) {
        let flush_start = Instant::now();
        let round = self.base_round + flush_index as usize;
        let round_u64 = round as u64;
        let run_seed = self.run_seed;
        let dim = self.global.len();

        let sampled: Vec<usize> = buffer.iter().map(|c| c.client).collect();
        let compromised_here: Vec<usize> = sampled
            .iter()
            .copied()
            .filter(|c| self.compromised.contains(c))
            .collect();
        trace.push(TraceEvent::RoundStarted {
            round,
            sampled,
            compromised: compromised_here,
        });

        let mut setup_rng = seed::round_setup_rng(run_seed, round_u64);
        self.personalization
            .begin_round(self.global, &mut setup_rng);

        // Benign training jobs in completion order, each against the
        // snapshot its client fetched. The snapshot set is frozen before
        // the fan-out, so parallel lanes only share immutable borrows and
        // determinism is independent of scheduling.
        let fed = self.fed;
        let cfg = self.cfg;
        self.jobs.clear();
        for c in buffer {
            if self.compromised.contains(&c.client) || fed.client(c.client).train.is_empty() {
                continue;
            }
            self.jobs.push((
                c.client,
                c.arrival_index,
                c.fetched_version,
                self.update_pool.pop().unwrap_or_default(),
            ));
        }
        let pers: &dyn Personalization = self.personalization.as_ref();
        let versions = &self.versions;
        let template = self.template;
        let train_start = Instant::now();
        self.workers.map_with_arena_into(
            self.arenas,
            &mut self.jobs,
            &mut self.outcomes,
            || ClientScratch::for_model(template),
            move |_, (cid, arrival_index, version, buf), scratch| {
                scratch.delta = buf;
                let snapshot = versions.get(version);
                let mut rng = seed::client_rng(run_seed, arrival_index, cid);
                let out = pers.local_train(
                    cid,
                    snapshot,
                    &fed.client(cid).train,
                    cfg,
                    scratch,
                    &mut rng,
                );
                (cid, out)
            },
        );
        self.profile.train_ms += train_start.elapsed().as_secs_f64() * 1e3;

        // Assemble updates in completion order; commits land in the same
        // order, independent of worker scheduling.
        let commit_start = Instant::now();
        self.updates.clear();
        self.staleness.clear();
        let mut benign_norms = Vec::new();
        let mut malicious_norms = Vec::new();
        let mut outcomes = std::mem::take(&mut self.outcomes);
        let mut outcome_iter = outcomes.drain(..);
        for c in buffer {
            let cid = c.client;
            let delta = if self.compromised.contains(&cid) {
                let adv = self
                    .adversary
                    .as_mut()
                    .expect("compromised implies adversary");
                let snapshot = self.versions.get(c.fetched_version);
                let mut rng = seed::adversary_rng(run_seed, c.arrival_index, cid);
                Some((adv.craft_update(cid, snapshot, round, &mut rng), true, None))
            } else if !fed.client(cid).train.is_empty() {
                let (ocid, out) = outcome_iter.next().expect("one outcome per benign job");
                debug_assert_eq!(ocid, cid, "outcomes must follow job order");
                Some((out.delta, false, Some(out.commit)))
            } else {
                // A benign client without training data contributes
                // nothing (it still held a snapshot reference).
                None
            };
            let Some((mut delta, malicious, commit)) = delta else {
                continue;
            };
            assert_eq!(
                delta.len(),
                dim,
                "client {cid} produced a wrong-sized update"
            );
            if c.corrupt {
                poison_delta(&mut delta);
            }
            // Simulated transport round-trip, identical to the synchronous
            // loop: before the finite-norm gate, after any corruption.
            self.cfg.quantization.roundtrip_inplace(&mut delta);
            let update = ClientUpdate::new(cid, delta, fed.client(cid).train.len());
            let norm = update.norm();
            if norm.is_finite() {
                if malicious {
                    malicious_norms.push(norm);
                } else {
                    // Client-local state is committed only for accepted
                    // updates, exactly as in the synchronous loop.
                    self.personalization
                        .commit(cid, commit.expect("benign outcome has a commit"));
                    benign_norms.push(norm);
                }
                self.staleness.push(c.staleness);
                self.updates.push(update);
            } else {
                self.profile.rejected_updates += 1;
                let reason = if c.corrupt {
                    "injected_corruption"
                } else {
                    "non_finite"
                };
                trace.push(TraceEvent::UpdateRejected {
                    round,
                    client: cid,
                    reason: reason.to_string(),
                });
                self.update_pool.push(update.delta);
            }
        }
        drop(outcome_iter);
        self.outcomes = outcomes;
        self.profile.commit_ms += commit_start.elapsed().as_secs_f64() * 1e3;

        let agg_start = Instant::now();
        self.agg.resize(dim, 0.0);
        let agg_delta_norm = if self.updates.is_empty() {
            // Every buffered update was rejected: the flush applies
            // nothing (mirrors the synchronous degradation policy).
            0.0
        } else {
            self.fedbuff
                .merge_pooled(&self.updates, &self.staleness, &mut self.agg, self.workers);
            let lr = self.cfg.server_lr as f32;
            let mut agg_sq = 0.0f64;
            for (g, &d) in self.global.iter_mut().zip(&self.agg) {
                let step = lr * d;
                agg_sq += f64::from(step) * f64::from(step);
                *g += step;
            }
            agg_sq.sqrt()
        };
        self.profile.aggregate_ms += agg_start.elapsed().as_secs_f64() * 1e3;

        if let Some(adv) = self.adversary.as_mut() {
            adv.observe_global(self.global, round);
        }

        trace.push(TraceEvent::RoundCompleted {
            round,
            aggregator: self.fedbuff.name().to_string(),
            num_malicious: malicious_norms.len(),
            benign_norms,
            malicious_norms,
            agg_delta_norm,
            elapsed_ms: flush_start.elapsed().as_secs_f64() * 1e3,
        });

        // Reclaim delta buffers and snapshot references: every buffered
        // completion fetched exactly once.
        for u in self.updates.drain(..) {
            self.update_pool.push(u.delta);
        }
        for c in buffer {
            self.versions.release(c.fetched_version);
        }
        let (wait_ns, dispatch_ns) = self.workers.take_sync_ns();
        self.profile.barrier_ms += wait_ns as f64 * 1e-6;
        self.profile.dispatch_ms += dispatch_ns as f64 * 1e-6;
        let (steals, stolen) = self.workers.take_steal_stats();
        self.profile.steals += steals;
        self.profile.stolen_items += stolen;
        self.profile.rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::FedAvg;
    use crate::personalize::{Clustered, Ditto, NoPersonalization};
    use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};
    use collapois_nn::zoo::ModelSpec;

    fn quick_server_with(personalization: Box<dyn Personalization>) -> FlServer {
        let cfg_img = SyntheticImageConfig {
            samples: 400,
            side: 8,
            classes: 4,
            ..Default::default()
        };
        let ds = SyntheticImage::new(cfg_img).generate();
        let mut rng = StdRng::seed_from_u64(3);
        let fed = FederatedDataset::build(&mut rng, &ds, 10, 1.0);
        let spec = ModelSpec::mlp(64, &[16], 4);
        let mut cfg = FlConfig::quick(spec);
        cfg.sample_rate = 0.5;
        FlServer::new(cfg, fed, Box::new(FedAvg::new()), personalization)
    }

    fn quick_server() -> FlServer {
        quick_server_with(Box::new(NoPersonalization::new()))
    }

    /// A trivial adversary pushing a constant delta.
    #[derive(Debug)]
    struct ConstAdversary {
        ids: Vec<usize>,
        value: f32,
    }

    impl Adversary for ConstAdversary {
        fn compromised(&self) -> &[usize] {
            &self.ids
        }
        fn craft_update(
            &mut self,
            _client_id: usize,
            global: &[f32],
            _round: usize,
            _rng: &mut StdRng,
        ) -> Vec<f32> {
            vec![self.value; global.len()]
        }
        fn name(&self) -> &'static str {
            "const"
        }
    }

    #[test]
    fn rounds_progress_and_model_moves() {
        let mut server = quick_server();
        let g0 = server.global().to_vec();
        let records = server.run_rounds(3, None);
        assert_eq!(records.len(), 3);
        assert_eq!(server.rounds_done(), 3);
        assert_ne!(server.global(), g0.as_slice());
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.round, i);
            assert!(!r.sampled.is_empty());
            assert_eq!(r.num_malicious, 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = quick_server();
        let mut b = quick_server();
        a.run_rounds(3, None);
        b.run_rounds(3, None);
        assert_eq!(a.global(), b.global());
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let mut seq = quick_server_with(Box::new(Ditto::new(0.1)));
        let mut par = quick_server_with(Box::new(Ditto::new(0.1)));
        par.set_workers(4);
        let rs = seq.run_rounds(3, None);
        let rp = par.run_rounds(3, None);
        assert_eq!(seq.global(), par.global());
        assert_eq!(rs, rp);
        // Personalized evaluation state must agree too.
        for cid in 0..seq.dataset().num_clients() {
            assert_eq!(
                seq.personalization().eval_params(cid, seq.global()),
                par.personalization().eval_params(cid, par.global()),
            );
        }
    }

    #[test]
    fn trace_events_rebuild_round_records() {
        let mut server = quick_server();
        let records = server.run_rounds(3, None);
        server.finish_run();
        let events = server.trace_events();
        assert!(matches!(events[0], TraceEvent::RunStarted { .. }));
        assert!(matches!(
            events.last(),
            Some(TraceEvent::RunCompleted { .. })
        ));
        let rebuilt = round_records_from_events(events);
        assert_eq!(rebuilt.len(), records.len());
        for (a, b) in rebuilt.iter().zip(&records) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.sampled, b.sampled);
            assert_eq!(a.benign_norms, b.benign_norms);
        }
    }

    #[test]
    fn snapshot_restore_matches_uninterrupted_run() {
        // Uninterrupted 6-round reference.
        let mut full = quick_server_with(Box::new(Clustered::new(2)));
        full.run_rounds(6, None);

        // Run 3 rounds, snapshot, restore into a fresh server, finish.
        let mut first = quick_server_with(Box::new(Clustered::new(2)));
        first.run_rounds(3, None);
        let snap = first.snapshot();
        let bytes = snap.encode();
        let snap = Snapshot::decode(&bytes).expect("codec roundtrip");
        let mut resumed = quick_server_with(Box::new(Clustered::new(2)));
        resumed.restore(&snap).expect("config matches");
        assert_eq!(resumed.rounds_done(), 3);
        resumed.run_rounds(3, None);

        assert_eq!(full.global(), resumed.global());
        for cid in 0..full.dataset().num_clients() {
            assert_eq!(
                full.personalization().eval_params(cid, full.global()),
                resumed.personalization().eval_params(cid, resumed.global()),
            );
        }
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let a = quick_server();
        let snap = a.snapshot();
        let cfg_img = SyntheticImageConfig {
            samples: 400,
            side: 8,
            classes: 4,
            ..Default::default()
        };
        let ds = SyntheticImage::new(cfg_img).generate();
        let mut rng = StdRng::seed_from_u64(3);
        let fed = FederatedDataset::build(&mut rng, &ds, 10, 1.0);
        let spec = ModelSpec::mlp(64, &[16], 4);
        let mut cfg = FlConfig::quick(spec);
        cfg.sample_rate = 0.5;
        cfg.seed += 1; // different run seed ⇒ different config hash
        let mut b = FlServer::new(
            cfg,
            fed,
            Box::new(FedAvg::new()),
            Box::new(NoPersonalization::new()),
        );
        assert!(matches!(
            b.restore(&snap),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn checkpoints_written_on_schedule() {
        let dir =
            std::env::temp_dir().join(format!("collapois-server-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut server = quick_server();
        server.enable_checkpoints(&dir, 2);
        server.run_rounds(5, None);
        let saved: Vec<_> = server
            .trace_events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::CheckpointSaved { .. }))
            .collect();
        assert_eq!(saved.len(), 2); // after rounds 2 and 4
        let latest = checkpoint::latest_checkpoint(&dir).expect("checkpoint exists");
        let snap = Snapshot::load(&latest).expect("readable");
        assert_eq!(snap.round, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adversary_updates_are_used() {
        let mut server = quick_server();
        server.collect_updates(true);
        let mut adv = ConstAdversary {
            ids: vec![0, 1, 2, 3, 4],
            value: 0.5,
        };
        // Run rounds until a compromised client is sampled.
        let mut saw_malicious = false;
        for _ in 0..20 {
            let r = server.run_round(Some(&mut adv));
            if r.num_malicious > 0 {
                saw_malicious = true;
                let ups = r.updates.expect("collection enabled");
                let mal: Vec<_> = ups
                    .iter()
                    .filter(|u| adv.ids.contains(&u.client_id))
                    .collect();
                assert_eq!(mal.len(), r.num_malicious);
                assert!(mal.iter().all(|u| u.delta.iter().all(|&d| d == 0.5)));
                assert_eq!(r.malicious_norms.len(), r.num_malicious);
                break;
            }
        }
        assert!(saw_malicious, "no compromised client sampled in 20 rounds");
    }

    #[test]
    fn update_collection_toggle() {
        let mut server = quick_server();
        let r = server.run_round(None);
        assert!(r.updates.is_none());
        server.collect_updates(true);
        let r = server.run_round(None);
        assert!(r.updates.is_some());
    }

    #[test]
    fn fault_dropout_is_deterministic_and_traced() {
        let plan = FaultPlan {
            dropout: 0.4,
            ..FaultPlan::none()
        };
        let mut a = quick_server();
        a.set_fault_plan(plan);
        let mut b = quick_server();
        b.set_fault_plan(plan);
        let ra = a.run_rounds(5, None);
        let rb = b.run_rounds(5, None);
        assert_eq!(ra, rb);
        assert_eq!(a.global(), b.global());
        let total_dropped: usize = ra.iter().map(|r| r.dropped.len()).sum();
        assert!(total_dropped > 0, "p=0.4 over 5 rounds must drop someone");
        for r in &ra {
            for d in &r.dropped {
                assert!(r.sampled.contains(d));
            }
        }
        // Trace events carry the same verdicts the records do.
        let traced: usize = a
            .trace_events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::ClientDropped { .. }))
            .count();
        assert_eq!(traced, total_dropped);
        assert_eq!(a.take_profile().dropped_clients, total_dropped);
    }

    #[test]
    fn faulted_run_matches_fault_free_run_over_survivors() {
        // The degradation policy's core invariant: dropping clients is
        // bit-identical to never sampling them, because every client's
        // training stream is keyed by (round, client).
        let mut faulted = quick_server_with(Box::new(Ditto::new(0.1)));
        faulted.set_fault_plan(FaultPlan {
            dropout: 0.3,
            ..FaultPlan::none()
        });
        let records = faulted.run_rounds(4, None);
        assert!(records.iter().any(|r| !r.dropped.is_empty()));

        let mut replay = quick_server_with(Box::new(Ditto::new(0.1)));
        for r in &records {
            let survivors: Vec<usize> = r
                .sampled
                .iter()
                .copied()
                .filter(|c| !r.dropped.contains(c))
                .collect();
            replay.run_round_with_cohort(&survivors, None);
        }
        assert_eq!(faulted.global(), replay.global());
        for cid in 0..faulted.dataset().num_clients() {
            assert_eq!(
                faulted.personalization().eval_params(cid, faulted.global()),
                replay.personalization().eval_params(cid, replay.global()),
            );
        }
    }

    #[test]
    fn corrupt_updates_are_rejected_before_aggregation() {
        let mut server = quick_server();
        server.set_fault_plan(FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::none()
        });
        let g0 = server.global().to_vec();
        let r = server.run_round(None);
        // Every transmitted update was poisoned, so every one is rejected
        // and the round leaves the global model untouched.
        assert_eq!(server.global(), g0.as_slice());
        assert!(r.benign_norms.is_empty());
        let rejected: Vec<_> = server
            .trace_events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::UpdateRejected { client, reason, .. } => {
                    Some((*client, reason.clone()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(rejected.len(), r.sampled.len());
        assert!(rejected
            .iter()
            .all(|(_, reason)| reason == "injected_corruption"));
        assert_eq!(server.take_profile().rejected_updates, r.sampled.len());
    }

    #[test]
    fn checkpoint_write_failure_is_survivable() {
        let dir =
            std::env::temp_dir().join(format!("collapois-server-ckpt-fail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut server = quick_server();
        server.set_fault_plan(FaultPlan {
            checkpoint_fail: 1.0,
            ..FaultPlan::none()
        });
        server.enable_checkpoints(&dir, 1);
        server.run_rounds(2, None); // must not panic
        assert_eq!(server.rounds_done(), 2);
        assert!(checkpoint::latest_checkpoint(&dir).is_none());
        let failures: Vec<_> = server
            .trace_events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::CheckpointWriteFailed {
                    attempt, gave_up, ..
                } => Some((*attempt, *gave_up)),
                _ => None,
            })
            .collect();
        // Every scheduled write burns all attempts, giving up on the last.
        assert_eq!(failures.len(), 2 * CHECKPOINT_WRITE_ATTEMPTS);
        assert!(failures
            .iter()
            .all(|&(attempt, gave_up)| gave_up == (attempt == CHECKPOINT_WRITE_ATTEMPTS)));
        assert_eq!(
            server.take_profile().checkpoint_write_failures,
            2 * CHECKPOINT_WRITE_ATTEMPTS
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_skips_torn_newest_checkpoint() {
        let dir =
            std::env::temp_dir().join(format!("collapois-server-torn-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut server = quick_server_with(Box::new(Clustered::new(2)));
        server.enable_checkpoints(&dir, 2);
        server.run_rounds(4, None); // checkpoints at rounds 2 and 4
        drop(server);

        // Tear the newest file as a crash mid-write would on a filesystem
        // without atomic rename.
        let newest = checkpoint::checkpoint_path(&dir, 4);
        let bytes = std::fs::read(&newest).expect("checkpoint exists");
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).expect("truncate");

        let mut resumed = quick_server_with(Box::new(Clustered::new(2)));
        let round = resumed.resume_latest(&dir).expect("fallback succeeds");
        assert_eq!(round, Some(2));
        assert_eq!(resumed.rounds_done(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_plan_changes_config_hash() {
        let clean = quick_server();
        let mut faulted = quick_server();
        faulted.set_fault_plan(FaultPlan {
            dropout: 0.2,
            ..FaultPlan::none()
        });
        assert_ne!(clean.config_hash(), faulted.config_hash());
        // A checkpoint from a fault-free run refuses to resume under a
        // different fault regime.
        let snap = clean.snapshot();
        assert!(matches!(
            faulted.restore(&snap),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    use collapois_runtime::sim::ArrivalProcess;

    /// A small buffered-async plan matched to the 10-client quick fixture.
    fn quick_sim_plan() -> SimPlan {
        SimPlan {
            num_clients: 10,
            arrival: ArrivalProcess::Poisson { mean_ms: 20.0 },
            train_mean_ms: 30.0,
            buffer_k: 4,
            max_concurrency: 8,
            ..SimPlan::default()
        }
    }

    /// Copies `events` with wall-clock and host-shape fields zeroed,
    /// leaving only the deterministic payload (virtual time is part of
    /// that payload).
    fn normalized(events: &[TraceEvent]) -> Vec<TraceEvent> {
        events
            .iter()
            .map(|e| match e {
                TraceEvent::RunStarted {
                    run_seed,
                    config_hash,
                    num_clients,
                    rounds,
                    aggregator,
                    resumed_from,
                    ..
                } => TraceEvent::RunStarted {
                    run_seed: *run_seed,
                    config_hash: *config_hash,
                    num_clients: *num_clients,
                    rounds: *rounds,
                    workers: 0,
                    aggregator: aggregator.clone(),
                    resumed_from: *resumed_from,
                },
                TraceEvent::RoundCompleted {
                    round,
                    aggregator,
                    num_malicious,
                    benign_norms,
                    malicious_norms,
                    agg_delta_norm,
                    ..
                } => TraceEvent::RoundCompleted {
                    round: *round,
                    aggregator: aggregator.clone(),
                    num_malicious: *num_malicious,
                    benign_norms: benign_norms.clone(),
                    malicious_norms: malicious_norms.clone(),
                    agg_delta_norm: *agg_delta_norm,
                    elapsed_ms: 0.0,
                },
                other => other.clone(),
            })
            .collect()
    }

    #[test]
    fn sim_run_is_worker_count_invariant() {
        let mut reference: Option<(Vec<u32>, Vec<TraceEvent>)> = None;
        for workers in [1usize, 2, 4, 8] {
            let mut server = quick_server_with(Box::new(Ditto::new(0.1)));
            server.set_workers(workers);
            let summary = server.run_sim(&quick_sim_plan(), 6, None);
            assert!(summary.reached_target, "plan must reach 6 flushes");
            assert_eq!(summary.flushes, 6);
            let bits: Vec<u32> = server.global().iter().map(|v| v.to_bits()).collect();
            let events = normalized(server.trace_events());
            match &reference {
                None => reference = Some((bits, events)),
                Some((rb, re)) => {
                    assert_eq!(rb, &bits, "global diverged at workers={workers}");
                    assert_eq!(re, &events, "trace diverged at workers={workers}");
                }
            }
        }
    }

    #[test]
    fn sim_flushes_advance_rounds_and_emit_round_events() {
        let mut server = quick_server();
        let summary = server.run_sim(&quick_sim_plan(), 5, None);
        assert_eq!(summary.flushes, 5);
        assert_eq!(server.rounds_done(), 5);
        assert!(summary.arrivals >= summary.completions);
        let events = server.trace_events();
        let flushed: Vec<(u64, usize)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BufferFlushed { flush, size, .. } => Some((*flush, *size)),
                _ => None,
            })
            .collect();
        assert_eq!(flushed.len(), 5);
        assert!(flushed.iter().all(|&(_, size)| size > 0));
        // Each flush plays a round: the rebuilt records line up 1:1.
        let rebuilt = round_records_from_events(events);
        assert_eq!(rebuilt.len(), 5);
        for (i, r) in rebuilt.iter().enumerate() {
            assert_eq!(r.round, i);
            assert!(!r.sampled.is_empty());
        }
        // Mixing modes keeps the round counter coherent.
        let rec = server.run_round(None);
        assert_eq!(rec.round, 5);
    }

    #[test]
    fn sim_adversary_updates_are_merged() {
        let mut adv = ConstAdversary {
            ids: vec![0, 1, 2],
            value: 0.25,
        };
        let mut server = quick_server();
        let summary = server.run_sim(&quick_sim_plan(), 6, Some(&mut adv));
        assert!(summary.reached_target);
        let rebuilt = round_records_from_events(server.trace_events());
        let malicious: usize = rebuilt.iter().map(|r| r.num_malicious).sum();
        assert!(
            malicious > 0,
            "compromised clients must arrive in 6 flushes"
        );
        for r in &rebuilt {
            assert_eq!(
                r.num_malicious,
                r.sampled.iter().filter(|c| adv.ids.contains(c)).count()
            );
        }
    }

    #[test]
    fn sim_faults_compose_with_buffered_async() {
        let plan = quick_sim_plan();
        let fault = FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::none()
        };
        let mut server = quick_server();
        server.set_fault_plan(fault);
        let g0 = server.global().to_vec();
        let summary = server.run_sim(&plan, 3, None);
        assert!(summary.reached_target);
        // Every buffered update was poisoned in flight: all rejected, the
        // model never moves.
        assert_eq!(server.global(), g0.as_slice());
        assert_eq!(
            server.take_profile().rejected_updates as u64,
            summary.completions
        );
    }

    #[test]
    fn zero_round_deadline_never_sheds_stragglers() {
        // Regression for the synchronous-round deadline semantics: a
        // straggler-heavy plan with `deadline_ms = 0` must mean "no
        // deadline" — every straggler is waited for, none is shed.
        let mut server = quick_server();
        server.set_fault_plan(FaultPlan {
            straggler: 1.0,
            straggler_mean_ms: 10_000.0,
            deadline_ms: 0.0,
            ..FaultPlan::none()
        });
        let records = server.run_rounds(4, None);
        for r in &records {
            assert!(
                r.dropped.is_empty(),
                "round {}: no deadline ⇒ no shed stragglers",
                r.round
            );
            assert_eq!(r.benign_norms.len(), r.sampled.len());
        }
        assert!(!server
            .trace_events()
            .iter()
            .any(|e| matches!(e, TraceEvent::ClientDropped { .. })));
        assert_eq!(server.take_profile().shed_stragglers, 0);
    }
}

#[cfg(test)]
mod sampling_tests {
    use super::*;

    #[test]
    fn small_cohorts_keep_the_bernoulli_sweep() {
        // The quick-scale draw sequence is pinned by the golden grid
        // hashes; reproduce it here directly from the RNG contract.
        let mut rng = seed::sampling_rng(42, 3);
        let expected: Vec<usize> = (0..64).filter(|_| rng.gen_bool(0.25)).collect();
        let mut rng = seed::sampling_rng(42, 3);
        assert_eq!(FlServer::sample_clients(&mut rng, 64, 0.25), expected);
    }

    #[test]
    fn large_cohorts_sample_distinct_sorted_ids() {
        let mut rng = seed::sampling_rng(7, 0);
        let s = FlServer::sample_clients(&mut rng, 4096, 0.02);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(s.iter().all(|&c| c < 4096));
        // k ~ Binomial(4096, 0.02): mean 81.9, sd ~9 — allow 6 sigma.
        assert!((28..=136).contains(&s.len()), "len {}", s.len());
    }

    #[test]
    fn large_cohort_sampling_is_pinned() {
        // Determinism fixture: any change to the binomial walk, Floyd's
        // index draws, or the RNG derivation shows up here.
        let mut rng = seed::sampling_rng(1234, 0);
        let s = FlServer::sample_clients(&mut rng, 2048, 0.005);
        assert_eq!(
            s,
            vec![63, 461, 526, 745, 1103, 1235, 1277, 1765, 1780, 1848, 1954]
        );
    }
}
