//! The federated round loop with the adversary hook.
//!
//! Each round (Algorithm 1 lines 4–14): sample clients with probability `q`,
//! let benign clients compute local updates via the configured
//! [`Personalization`] strategy, let the [`Adversary`] craft malicious
//! updates for sampled compromised clients, aggregate with the configured
//! [`Aggregator`], and apply `θ ← θ + λ·Δ`.

use crate::aggregate::Aggregator;
use crate::config::FlConfig;
use crate::personalize::Personalization;
use crate::update::ClientUpdate;
use collapois_data::federated::FederatedDataset;
use collapois_nn::model::Sequential;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An attacker controlling a fixed set of compromised clients.
///
/// The server calls [`Adversary::craft_update`] instead of benign local
/// training whenever a compromised client is sampled, and
/// [`Adversary::observe_global`] after every aggregation (black-box threat
/// model: the attacker sees exactly what its compromised clients see).
pub trait Adversary: std::fmt::Debug {
    /// Ids of the compromised clients.
    fn compromised(&self) -> &[usize];

    /// Malicious delta for compromised client `client_id` at `round`, given
    /// the current global parameters (what the client just received).
    fn craft_update(
        &mut self,
        client_id: usize,
        global: &[f32],
        round: usize,
        rng: &mut StdRng,
    ) -> Vec<f32>;

    /// Called after each aggregation with the new global parameters.
    fn observe_global(&mut self, _global: &[f32], _round: usize) {}

    /// Short name for report tables.
    fn name(&self) -> &'static str;
}

/// Per-round record for analysis and plotting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Sampled client ids (benign and compromised).
    pub sampled: Vec<usize>,
    /// How many of the sampled clients were compromised.
    pub num_malicious: usize,
    /// l2 norms of benign updates this round.
    pub benign_norms: Vec<f64>,
    /// l2 norms of malicious updates this round.
    pub malicious_norms: Vec<f64>,
    /// The raw updates (kept only when update collection is enabled).
    pub updates: Option<Vec<ClientUpdate>>,
    /// The global parameters the round started from (kept only when update
    /// collection is enabled).
    pub global_before: Option<Vec<f32>>,
}

/// The federated server simulation.
#[derive(Debug)]
pub struct FlServer {
    cfg: FlConfig,
    fed: FederatedDataset,
    aggregator: Box<dyn Aggregator>,
    personalization: Box<dyn Personalization>,
    global: Vec<f32>,
    scratch: Sequential,
    rng: StdRng,
    round: usize,
    collect_updates: bool,
}

impl FlServer {
    /// Builds a server over the federated dataset.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FlConfig::validate`]).
    pub fn new(
        cfg: FlConfig,
        fed: FederatedDataset,
        aggregator: Box<dyn Aggregator>,
        mut personalization: Box<dyn Personalization>,
    ) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid FlConfig: {e}"));
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scratch = cfg.model.build(&mut rng);
        let global = scratch.params();
        personalization.init(fed.num_clients(), global.len());
        Self {
            cfg,
            fed,
            aggregator,
            personalization,
            global,
            scratch,
            rng,
            round: 0,
            collect_updates: false,
        }
    }

    /// Enables keeping the raw updates in each [`RoundRecord`] (used by the
    /// gradient-angle analyses of Figs. 3 and 6).
    pub fn collect_updates(&mut self, enable: bool) {
        self.collect_updates = enable;
    }

    /// Current global parameters.
    pub fn global(&self) -> &[f32] {
        self.global
            .as_slice()
    }

    /// Overwrites the global parameters (used to warm-start experiments).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn set_global(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.global.len(), "global dimension mismatch");
        self.global.copy_from_slice(params);
    }

    /// The configuration.
    pub fn config(&self) -> &FlConfig {
        &self.cfg
    }

    /// The federated dataset.
    pub fn dataset(&self) -> &FederatedDataset {
        &self.fed
    }

    /// The personalization strategy (for evaluation).
    pub fn personalization(&self) -> &dyn Personalization {
        self.personalization.as_ref()
    }

    /// Completed round count.
    pub fn rounds_done(&self) -> usize {
        self.round
    }

    /// Samples the round's client set: each client independently with
    /// probability `q`, re-drawn until non-empty.
    fn sample_clients(&mut self) -> Vec<usize> {
        let n = self.fed.num_clients();
        loop {
            let sampled: Vec<usize> =
                (0..n).filter(|_| self.rng.gen_bool(self.cfg.sample_rate)).collect();
            if !sampled.is_empty() {
                return sampled;
            }
        }
    }

    /// Runs one federated round, optionally under attack.
    pub fn run_round(
        &mut self,
        mut adversary: Option<&mut (dyn Adversary + '_)>,
    ) -> RoundRecord {
        let sampled = self.sample_clients();
        let dim = self.global.len();
        let global_before =
            if self.collect_updates { Some(self.global.clone()) } else { None };
        let mut updates: Vec<ClientUpdate> = Vec::with_capacity(sampled.len());
        let mut benign_norms = Vec::new();
        let mut malicious_norms = Vec::new();
        let mut num_malicious = 0usize;

        for &cid in &sampled {
            let is_compromised = adversary
                .as_ref()
                .map(|a| a.compromised().contains(&cid))
                .unwrap_or(false);
            let delta = if is_compromised {
                num_malicious += 1;
                let adv = adversary.as_mut().expect("compromised implies adversary");
                adv.craft_update(cid, &self.global, self.round, &mut self.rng)
            } else {
                let data = &self.fed.client(cid).train;
                if data.is_empty() {
                    continue;
                }
                self.personalization.local_train(
                    cid,
                    &self.global,
                    data,
                    &self.cfg,
                    &mut self.scratch,
                    &mut self.rng,
                )
            };
            assert_eq!(delta.len(), dim, "client {cid} produced a wrong-sized update");
            let update = ClientUpdate::new(cid, delta, self.fed.client(cid).train.len());
            if is_compromised {
                malicious_norms.push(update.norm());
            } else {
                benign_norms.push(update.norm());
            }
            updates.push(update);
        }

        let agg = self.aggregator.aggregate(&updates, dim, &mut self.rng);
        let lr = self.cfg.server_lr as f32;
        for (g, &d) in self.global.iter_mut().zip(&agg) {
            *g += lr * d;
        }
        self.aggregator.post_process(&mut self.global, &mut self.rng);

        if let Some(adv) = adversary.as_mut() {
            adv.observe_global(&self.global, self.round);
        }

        let record = RoundRecord {
            round: self.round,
            sampled,
            num_malicious,
            benign_norms,
            malicious_norms,
            updates: if self.collect_updates { Some(updates) } else { None },
            global_before,
        };
        self.round += 1;
        record
    }

    /// Runs `n` rounds, returning each round's record.
    pub fn run_rounds(
        &mut self,
        n: usize,
        mut adversary: Option<&mut (dyn Adversary + '_)>,
    ) -> Vec<RoundRecord> {
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let adv = adversary.as_deref_mut();
            records.push(self.run_round(adv));
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::FedAvg;
    use crate::personalize::NoPersonalization;
    use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};
    use collapois_nn::zoo::ModelSpec;

    fn quick_server() -> FlServer {
        let cfg_img = SyntheticImageConfig {
            samples: 400,
            side: 8,
            classes: 4,
            ..Default::default()
        };
        let ds = SyntheticImage::new(cfg_img).generate();
        let mut rng = StdRng::seed_from_u64(3);
        let fed = FederatedDataset::build(&mut rng, &ds, 10, 1.0);
        let spec = ModelSpec::mlp(64, &[16], 4);
        let mut cfg = FlConfig::quick(spec);
        cfg.sample_rate = 0.5;
        FlServer::new(cfg, fed, Box::new(FedAvg::new()), Box::new(NoPersonalization::new()))
    }

    /// A trivial adversary pushing a constant delta.
    #[derive(Debug)]
    struct ConstAdversary {
        ids: Vec<usize>,
        value: f32,
    }

    impl Adversary for ConstAdversary {
        fn compromised(&self) -> &[usize] {
            &self.ids
        }
        fn craft_update(
            &mut self,
            _client_id: usize,
            global: &[f32],
            _round: usize,
            _rng: &mut StdRng,
        ) -> Vec<f32> {
            vec![self.value; global.len()]
        }
        fn name(&self) -> &'static str {
            "const"
        }
    }

    #[test]
    fn rounds_progress_and_model_moves() {
        let mut server = quick_server();
        let g0 = server.global().to_vec();
        let records = server.run_rounds(3, None);
        assert_eq!(records.len(), 3);
        assert_eq!(server.rounds_done(), 3);
        assert_ne!(server.global(), g0.as_slice());
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.round, i);
            assert!(!r.sampled.is_empty());
            assert_eq!(r.num_malicious, 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = quick_server();
        let mut b = quick_server();
        a.run_rounds(3, None);
        b.run_rounds(3, None);
        assert_eq!(a.global(), b.global());
    }

    #[test]
    fn adversary_updates_are_used() {
        let mut server = quick_server();
        server.collect_updates(true);
        let mut adv = ConstAdversary { ids: vec![0, 1, 2, 3, 4], value: 0.5 };
        // Run rounds until a compromised client is sampled.
        let mut saw_malicious = false;
        for _ in 0..20 {
            let r = server.run_round(Some(&mut adv));
            if r.num_malicious > 0 {
                saw_malicious = true;
                let ups = r.updates.expect("collection enabled");
                let mal: Vec<_> = ups
                    .iter()
                    .filter(|u| adv.ids.contains(&u.client_id))
                    .collect();
                assert_eq!(mal.len(), r.num_malicious);
                assert!(mal.iter().all(|u| u.delta.iter().all(|&d| d == 0.5)));
                assert_eq!(r.malicious_norms.len(), r.num_malicious);
                break;
            }
        }
        assert!(saw_malicious, "no compromised client sampled in 20 rounds");
    }

    #[test]
    fn update_collection_toggle() {
        let mut server = quick_server();
        let r = server.run_round(None);
        assert!(r.updates.is_none());
        server.collect_updates(true);
        let r = server.run_round(None);
        assert!(r.updates.is_some());
    }
}
