//! Server-side training-dynamics monitor.
//!
//! §II-B of the paper: "MRepl often causes noticeable performance shifts,
//! making detection easier by monitoring abrupt changes across training
//! rounds", while CollaPois is designed to avoid "shifts or degradation in
//! the FL model's performance on legitimate data samples". This monitor
//! implements exactly that check: it tracks the per-round global-model
//! displacement and/or a utility series, and flags rounds whose
//! round-to-round change is an anomalous jump against a **robust**
//! (median/MAD) trailing baseline — robust, because an attacker jolting the
//! model *every* round would otherwise normalize its own jolts into a
//! mean/std baseline.
//!
//! The detector only ever consults the trailing `window` of each series, so
//! it stores exactly that much: displacements and utility deltas live in
//! fixed-capacity ring buffers, the previous global model is copied into a
//! reused buffer, and the median/MAD computation sorts inside a persistent
//! scratch vector. After warm-up, `observe` performs no heap allocation
//! (alerts are the one exception — each alert pushes onto the alert log,
//! and alerts are by construction rare events), which keeps the monitor
//! inside the round loop's zero-allocation steady-state budget
//! (`tests/alloc_steady_state.rs`).

use collapois_stats::geometry::l2_distance;

/// A flagged round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftAlert {
    /// The round index that jumped.
    pub round: usize,
    /// Observed value (displacement or |utility delta|).
    pub observed: f64,
    /// Trailing-window median the observation was compared against.
    pub baseline_median: f64,
    /// Robust z-score: deviations from the median in MAD-σ units.
    pub z_score: f64,
}

/// Fixed-capacity ring over the trailing `cap` observations of a series.
///
/// Values are retrieved only for order-independent statistics (median, MAD,
/// min/max), so no effort is made to expose them in arrival order.
#[derive(Debug, Clone)]
struct Trailing {
    buf: Vec<f64>,
    head: usize,
    cap: usize,
}

impl Trailing {
    fn new(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
            head: 0,
            cap,
        }
    }

    fn push(&mut self, v: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        }
    }

    fn values(&self) -> &[f64] {
        &self.buf
    }
}

/// Detects abrupt round-to-round changes in model displacement and utility.
#[derive(Debug, Clone)]
pub struct ShiftDetector {
    window: usize,
    z_threshold: f64,
    last_global: Option<Vec<f32>>,
    displacements: Trailing,
    last_utility: Option<f64>,
    utility_deltas: Trailing,
    /// Sort scratch for the median/MAD pass; capacity `window`, reused
    /// across rounds.
    scratch: Vec<f64>,
    alerts: Vec<ShiftAlert>,
    round: usize,
}

impl ShiftDetector {
    /// Creates a detector with a trailing `window` (minimum history before
    /// alerts fire) and a robust z-score threshold.
    ///
    /// # Panics
    ///
    /// Panics if `window < 3` or `z_threshold <= 0`.
    pub fn new(window: usize, z_threshold: f64) -> Self {
        assert!(window >= 3, "window must be at least 3");
        assert!(z_threshold > 0.0, "z threshold must be positive");
        Self {
            window,
            z_threshold,
            last_global: None,
            displacements: Trailing::new(window),
            last_utility: None,
            utility_deltas: Trailing::new(window),
            scratch: Vec::with_capacity(window),
            alerts: Vec::new(),
            round: 0,
        }
    }

    /// Default configuration: 6-round window, 6σ robust threshold.
    pub fn default_paper() -> Self {
        Self::new(6, 6.0)
    }

    /// Feeds one round's observation: the post-aggregation global model
    /// (when displacement monitoring is wanted) and/or a utility
    /// measurement such as validation accuracy. Returns an alert if this
    /// round jumped on either channel.
    pub fn observe(&mut self, global: Option<&[f32]>, utility: Option<f64>) -> Option<ShiftAlert> {
        let mut alert: Option<ShiftAlert> = None;
        if let Some(global) = global {
            match &mut self.last_global {
                Some(last) => {
                    let disp = l2_distance(last, global);
                    alert = robust_check(
                        self.displacements.values(),
                        disp,
                        self.window,
                        self.z_threshold,
                        self.round,
                        &mut self.scratch,
                    );
                    self.displacements.push(disp);
                    // Reuse the buffer; the model dimension never changes
                    // mid-run.
                    last.copy_from_slice(global);
                }
                None => self.last_global = Some(global.to_vec()),
            }
        }
        if let Some(u) = utility {
            if let Some(last) = self.last_utility {
                let delta = (u - last).abs();
                if let Some(a) = robust_check(
                    self.utility_deltas.values(),
                    delta,
                    self.window,
                    self.z_threshold,
                    self.round,
                    &mut self.scratch,
                ) {
                    alert = Some(match alert {
                        Some(prev) if prev.z_score >= a.z_score => prev,
                        _ => a,
                    });
                }
                self.utility_deltas.push(delta);
            }
            self.last_utility = Some(u);
        }
        if let Some(a) = alert {
            self.alerts.push(a);
        }
        self.round += 1;
        alert
    }

    /// All alerts so far.
    pub fn alerts(&self) -> &[ShiftAlert] {
        &self.alerts
    }

    /// The trailing window of recorded displacements (at most `window`
    /// values, unordered).
    pub fn displacements(&self) -> &[f64] {
        self.displacements.values()
    }
}

/// Robust outlier check of `observed` against the trailing `history`
/// (median ± z·1.4826·MAD), sorting inside `scratch` instead of allocating.
fn robust_check(
    history: &[f64],
    observed: f64,
    window: usize,
    z_threshold: f64,
    round: usize,
    scratch: &mut Vec<f64>,
) -> Option<ShiftAlert> {
    if history.len() < window {
        return None;
    }
    scratch.clear();
    scratch.extend_from_slice(history);
    scratch.sort_unstable_by(|a, b| a.partial_cmp(b).expect("non-NaN monitor series"));
    let med = median_of_sorted(scratch);
    let range = scratch[scratch.len() - 1] - scratch[0];
    // Second pass: absolute deviations from the median, in place.
    for v in scratch.iter_mut() {
        *v = (*v - med).abs();
    }
    scratch.sort_unstable_by(|a, b| a.partial_cmp(b).expect("non-NaN deviations"));
    let mad = median_of_sorted(scratch);
    // Spread floor: a fully converged (near-constant) window must not
    // make microscopic jitter look like a billion-sigma event. The
    // 5e-3·(1+|med|) term sets the minimum jump size considered
    // meaningful at this window's scale.
    let spread = (1.4826 * mad)
        .max(0.1 * range)
        .max(5e-3 * (1.0 + med.abs()));
    let z = (observed - med) / spread;
    if z > z_threshold {
        Some(ShiftAlert {
            round,
            observed,
            baseline_median: med,
            z_score: z,
        })
    } else {
        None
    }
}

/// Median of an already-sorted slice, with the same linear interpolation as
/// `collapois_stats::descriptive::median` (so alert numerics match the
/// historical implementation).
fn median_of_sorted(sorted: &[f64]) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = 0.5 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_smooth(det: &mut ShiftDetector, rounds: usize) {
        for t in 0..rounds {
            // Slowly converging model with mild wobble.
            let wobble = 0.004 * ((t % 3) as f32);
            let v = vec![1.0f32 / (t as f32 + 1.0) + wobble; 4];
            det.observe(
                Some(&v),
                Some(0.5 + 0.01 * t as f64 + 0.002 * (t % 2) as f64),
            );
        }
    }

    #[test]
    fn smooth_training_raises_no_alerts() {
        let mut det = ShiftDetector::default_paper();
        feed_smooth(&mut det, 25);
        assert!(det.alerts().is_empty(), "{:?}", det.alerts());
    }

    #[test]
    fn sudden_model_replacement_is_flagged() {
        let mut det = ShiftDetector::default_paper();
        feed_smooth(&mut det, 12);
        let jump = vec![50.0f32; 4];
        let alert = det.observe(Some(&jump), Some(0.6));
        assert!(alert.is_some(), "replacement jump must be flagged");
        assert!(alert.unwrap().z_score > 6.0);
    }

    #[test]
    fn utility_jump_is_flagged_without_model_access() {
        let mut det = ShiftDetector::default_paper();
        for t in 0..12 {
            det.observe(None, Some(0.50 + 0.002 * t as f64 + 0.001 * (t % 2) as f64));
        }
        // The paper's MRepl signature: Benign AC jumps ~35 points at once.
        let alert = det.observe(None, Some(0.95));
        assert!(alert.is_some(), "utility jump must be flagged");
        assert!(det.displacements().is_empty());
    }

    #[test]
    fn needs_history_before_alerting() {
        let mut det = ShiftDetector::default_paper();
        for t in 0..4 {
            assert!(det.observe(Some(&[100.0 * t as f32; 4]), None).is_none());
        }
    }

    #[test]
    fn constant_jolting_normalizes_into_baseline() {
        // An attacker jolting every round builds a high-but-stable baseline:
        // the robust detector does not keep firing forever (only genuinely
        // anomalous rounds relative to the recent window fire).
        let mut det = ShiftDetector::default_paper();
        for t in 0..30 {
            let v = vec![if t % 2 == 0 { 10.0f32 } else { -10.0 }; 4];
            det.observe(Some(&v), None);
        }
        assert!(det.alerts().len() <= 2, "{:?}", det.alerts());
    }

    #[test]
    #[should_panic(expected = "window must be")]
    fn rejects_tiny_window() {
        let _ = ShiftDetector::new(2, 4.0);
    }

    #[test]
    fn history_stays_bounded_by_window() {
        let mut det = ShiftDetector::default_paper();
        feed_smooth(&mut det, 50);
        assert_eq!(det.displacements().len(), 6);
    }

    #[test]
    fn bounded_history_matches_full_history_check() {
        // The ring keeps exactly the values the old full-history
        // implementation's trailing-window slice would have used, so alert
        // decisions are identical. Reconstruct the old behavior directly.
        let series: Vec<f64> = (0..40)
            .map(|t| 1.0 + 0.1 * ((t * 7) % 5) as f64 + if t == 33 { 25.0 } else { 0.0 })
            .collect();
        let window = 6;
        let mut det = ShiftDetector::new(window, 6.0);
        let mut full: Vec<f64> = Vec::new();
        let mut scratch = Vec::new();
        let mut expected_rounds = Vec::new();
        for (t, &u) in series.iter().enumerate() {
            if t > 0 {
                let delta = (u - series[t - 1]).abs();
                let tail_start = full.len().saturating_sub(window);
                if robust_check(&full[tail_start..], delta, window, 6.0, t, &mut scratch).is_some()
                {
                    expected_rounds.push(t);
                }
                full.push(delta);
            }
            det.observe(None, Some(u));
        }
        let got: Vec<usize> = det.alerts().iter().map(|a| a.round).collect();
        assert_eq!(got, expected_rounds);
        assert!(!got.is_empty(), "the spike at t=33 should alert");
    }
}
