//! Server-side training-dynamics monitor.
//!
//! §II-B of the paper: "MRepl often causes noticeable performance shifts,
//! making detection easier by monitoring abrupt changes across training
//! rounds", while CollaPois is designed to avoid "shifts or degradation in
//! the FL model's performance on legitimate data samples". This monitor
//! implements exactly that check: it tracks the per-round global-model
//! displacement and/or a utility series, and flags rounds whose
//! round-to-round change is an anomalous jump against a **robust**
//! (median/MAD) trailing baseline — robust, because an attacker jolting the
//! model *every* round would otherwise normalize its own jolts into a
//! mean/std baseline.

use collapois_stats::descriptive::median;
use collapois_stats::geometry::l2_distance;

/// A flagged round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftAlert {
    /// The round index that jumped.
    pub round: usize,
    /// Observed value (displacement or |utility delta|).
    pub observed: f64,
    /// Trailing-window median the observation was compared against.
    pub baseline_median: f64,
    /// Robust z-score: deviations from the median in MAD-σ units.
    pub z_score: f64,
}

/// Detects abrupt round-to-round changes in model displacement and utility.
#[derive(Debug, Clone)]
pub struct ShiftDetector {
    window: usize,
    z_threshold: f64,
    last_global: Option<Vec<f32>>,
    displacements: Vec<f64>,
    utilities: Vec<f64>,
    alerts: Vec<ShiftAlert>,
    round: usize,
}

impl ShiftDetector {
    /// Creates a detector with a trailing `window` (minimum history before
    /// alerts fire) and a robust z-score threshold.
    ///
    /// # Panics
    ///
    /// Panics if `window < 3` or `z_threshold <= 0`.
    pub fn new(window: usize, z_threshold: f64) -> Self {
        assert!(window >= 3, "window must be at least 3");
        assert!(z_threshold > 0.0, "z threshold must be positive");
        Self {
            window,
            z_threshold,
            last_global: None,
            displacements: Vec::new(),
            utilities: Vec::new(),
            alerts: Vec::new(),
            round: 0,
        }
    }

    /// Default configuration: 6-round window, 6σ robust threshold.
    pub fn default_paper() -> Self {
        Self::new(6, 6.0)
    }

    /// Feeds one round's observation: the post-aggregation global model
    /// (when displacement monitoring is wanted) and/or a utility
    /// measurement such as validation accuracy. Returns an alert if this
    /// round jumped on either channel.
    pub fn observe(&mut self, global: Option<&[f32]>, utility: Option<f64>) -> Option<ShiftAlert> {
        let mut alert: Option<ShiftAlert> = None;
        if let Some(global) = global {
            if let Some(last) = &self.last_global {
                let disp = l2_distance(last, global);
                alert = self.check(&self.displacements.clone(), disp);
                self.displacements.push(disp);
            }
            self.last_global = Some(global.to_vec());
        }
        if let Some(u) = utility {
            if self.utilities.last().is_some() {
                let deltas: Vec<f64> = self
                    .utilities
                    .windows(2)
                    .map(|w| (w[1] - w[0]).abs())
                    .collect();
                let delta = (u - *self.utilities.last().expect("non-empty")).abs();
                if let Some(a) = self.check(&deltas, delta) {
                    alert = Some(match alert {
                        Some(prev) if prev.z_score >= a.z_score => prev,
                        _ => a,
                    });
                }
            }
            self.utilities.push(u);
        }
        if let Some(a) = alert {
            self.alerts.push(a);
        }
        self.round += 1;
        alert
    }

    /// Robust outlier check of `observed` against the trailing window of
    /// `history` (median ± z·1.4826·MAD).
    fn check(&self, history: &[f64], observed: f64) -> Option<ShiftAlert> {
        if history.len() < self.window {
            return None;
        }
        let tail = &history[history.len() - self.window..];
        let med = median(tail);
        let deviations: Vec<f64> = tail.iter().map(|v| (v - med).abs()).collect();
        let mad = median(&deviations);
        let range = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - tail.iter().cloned().fold(f64::INFINITY, f64::min);
        // Spread floor: a fully converged (near-constant) window must not
        // make microscopic jitter look like a billion-sigma event. The
        // 5e-3·(1+|med|) term sets the minimum jump size considered
        // meaningful at this window's scale.
        let spread = (1.4826 * mad)
            .max(0.1 * range)
            .max(5e-3 * (1.0 + med.abs()));
        let z = (observed - med) / spread;
        if z > self.z_threshold {
            Some(ShiftAlert {
                round: self.round,
                observed,
                baseline_median: med,
                z_score: z,
            })
        } else {
            None
        }
    }

    /// All alerts so far.
    pub fn alerts(&self) -> &[ShiftAlert] {
        &self.alerts
    }

    /// Recorded per-round displacements.
    pub fn displacements(&self) -> &[f64] {
        &self.displacements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_smooth(det: &mut ShiftDetector, rounds: usize) {
        for t in 0..rounds {
            // Slowly converging model with mild wobble.
            let wobble = 0.004 * ((t % 3) as f32);
            let v = vec![1.0f32 / (t as f32 + 1.0) + wobble; 4];
            det.observe(
                Some(&v),
                Some(0.5 + 0.01 * t as f64 + 0.002 * (t % 2) as f64),
            );
        }
    }

    #[test]
    fn smooth_training_raises_no_alerts() {
        let mut det = ShiftDetector::default_paper();
        feed_smooth(&mut det, 25);
        assert!(det.alerts().is_empty(), "{:?}", det.alerts());
    }

    #[test]
    fn sudden_model_replacement_is_flagged() {
        let mut det = ShiftDetector::default_paper();
        feed_smooth(&mut det, 12);
        let jump = vec![50.0f32; 4];
        let alert = det.observe(Some(&jump), Some(0.6));
        assert!(alert.is_some(), "replacement jump must be flagged");
        assert!(alert.unwrap().z_score > 6.0);
    }

    #[test]
    fn utility_jump_is_flagged_without_model_access() {
        let mut det = ShiftDetector::default_paper();
        for t in 0..12 {
            det.observe(None, Some(0.50 + 0.002 * t as f64 + 0.001 * (t % 2) as f64));
        }
        // The paper's MRepl signature: Benign AC jumps ~35 points at once.
        let alert = det.observe(None, Some(0.95));
        assert!(alert.is_some(), "utility jump must be flagged");
        assert!(det.displacements().is_empty());
    }

    #[test]
    fn needs_history_before_alerting() {
        let mut det = ShiftDetector::default_paper();
        for t in 0..4 {
            assert!(det.observe(Some(&[100.0 * t as f32; 4]), None).is_none());
        }
    }

    #[test]
    fn constant_jolting_normalizes_into_baseline() {
        // An attacker jolting every round builds a high-but-stable baseline:
        // the robust detector does not keep firing forever (only genuinely
        // anomalous rounds relative to the recent window fire).
        let mut det = ShiftDetector::default_paper();
        for t in 0..30 {
            let v = vec![if t % 2 == 0 { 10.0f32 } else { -10.0 }; 4];
            det.observe(Some(&v), None);
        }
        assert!(det.alerts().len() <= 2, "{:?}", det.alerts());
    }

    #[test]
    #[should_panic(expected = "window must be")]
    fn rejects_tiny_window() {
        let _ = ShiftDetector::new(2, 4.0);
    }
}
