//! Deterministic lossy quantization of client update deltas.
//!
//! Production FL systems ship compressed updates; the SoK benchmarking
//! literature shows robust aggregators (Krum, trimmed-mean — exactly the
//! rules the CollaPois paper evaluates) behave measurably differently under
//! quantized updates. This module provides the two transport codecs the
//! scenario grid exposes (`quantization = "f32" | "f16" | "int8"`) as a
//! **simulated wire round-trip**: the server encodes each accepted delta to
//! the transport format and immediately decodes it back to `f32` *before*
//! the finite-norm gate and aggregation, so every aggregator, defense and
//! golden-fixture invariant operates on exactly the values a real receiver
//! would see — and none of them need to know quantization exists.
//!
//! # Determinism contract
//!
//! * Both lossy codecs round with **round-to-nearest, ties-to-even** (RNE),
//!   the IEEE 754 default — no stochastic rounding, no platform-dependent
//!   rounding modes. Encoding is a pure per-element function (plus, for
//!   int8, a per-tensor scale that is itself a pure function of the
//!   tensor), so the round-trip is identical across worker counts, chunk
//!   boundaries and replays: quantized golden runs stay worker-invariant.
//! * The round-trip is **idempotent**: decoded values re-encode to the same
//!   code words (f16: exactly representable values round-trip unchanged;
//!   int8: `q·s / s` rounds back to `q` — asserted by proptests in
//!   `tests/quant_roundtrip.rs`).
//! * Non-finite inputs stay non-finite (f16) or skip quantization entirely
//!   (int8, which has no non-finite code points), so the server's
//!   finite-norm gate fires for a corrupted delta exactly as it does
//!   unquantized. An f16 *overflow* (|x| ≥ 65520) becomes `±inf` and is
//!   therefore rejected by the gate — the honest semantics of a delta too
//!   large for its transport format.
//!
//! The f16 codec is hand-rolled bit manipulation (the workspace vendors no
//! `half` crate); the int8 codec uses a per-tensor symmetric scale
//! `max|x| / 127` with codes clamped to `[-127, 127]` (the -128 code is
//! unused, keeping the codebook symmetric).

use std::fmt;

/// Transport codec applied to every accepted client delta, selected
/// per-scenario (`FlConfig::quantization`, the grid's `quantization` key,
/// the CLI's `quant=` option).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Quantization {
    /// No quantization: deltas travel as IEEE 754 binary32 (the exact
    /// no-op; the historical behavior of every scenario before the
    /// quantization axis existed).
    #[default]
    F32,
    /// IEEE 754 binary16 round-trip with RNE, per element.
    F16,
    /// Symmetric per-tensor int8: scale `max|x| / 127`, RNE codes clamped
    /// to `[-127, 127]`.
    Int8,
}

impl Quantization {
    /// Stable lowercase name (`"f32"` / `"f16"` / `"int8"`) — the grid and
    /// CLI vocabulary, also used in canonical scenario dumps.
    pub fn name(self) -> &'static str {
        match self {
            Quantization::F32 => "f32",
            Quantization::F16 => "f16",
            Quantization::Int8 => "int8",
        }
    }

    /// Parses a [`name`](Self::name) back to the codec; `None` for anything
    /// outside the closed vocabulary.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(Quantization::F32),
            "f16" => Some(Quantization::F16),
            "int8" => Some(Quantization::Int8),
            _ => None,
        }
    }

    /// Simulates the transport round-trip in place: encode `delta` to this
    /// codec and decode it back to `f32`. [`Quantization::F32`] is an exact
    /// no-op. Allocation-free (the int8 scale pass reuses no scratch).
    pub fn roundtrip_inplace(self, delta: &mut [f32]) {
        match self {
            Quantization::F32 => {}
            Quantization::F16 => {
                for v in delta.iter_mut() {
                    *v = f16_bits_to_f32(f32_to_f16_bits(*v));
                }
            }
            Quantization::Int8 => {
                let Some(scale) = int8_scale(delta) else {
                    return;
                };
                for v in delta.iter_mut() {
                    *v = quantize_i8(*v, scale) as f32 * scale;
                }
            }
        }
    }
}

impl fmt::Display for Quantization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The symmetric per-tensor int8 scale `max|x| / 127`, or `None` when
/// quantization must be skipped: an all-zero tensor (nothing to encode; a
/// zero scale would be fine but is pointless) or any non-finite element
/// (int8 has no non-finite code points, and the delta is already destined
/// for the finite-norm gate's reject path — quantizing garbage would only
/// *hide* the corruption by mapping NaN to a finite code).
pub fn int8_scale(x: &[f32]) -> Option<f32> {
    let mut max_abs = 0.0f32;
    for &v in x {
        if !v.is_finite() {
            return None;
        }
        max_abs = max_abs.max(v.abs());
    }
    if max_abs == 0.0 {
        None
    } else {
        Some(max_abs / 127.0)
    }
}

/// One int8 code: `round_ties_even(x / scale)` clamped to `[-127, 127]`.
#[inline]
pub fn quantize_i8(x: f32, scale: f32) -> i8 {
    (x / scale).round_ties_even().clamp(-127.0, 127.0) as i8
}

/// Encodes `src` as `(scale, codes)` into `out` (cleared and refilled),
/// returning the scale — the bandwidth-bench / wire-format entry point.
/// A `None` scale (all-zero or non-finite input) produces an empty code
/// vector; [`decode_i8`] treats that as "decode to the original" being
/// impossible, so callers should fall back to the unencoded tensor (the
/// in-place [`Quantization::roundtrip_inplace`] does exactly that).
pub fn encode_i8(src: &[f32], out: &mut Vec<i8>) -> Option<f32> {
    out.clear();
    let scale = int8_scale(src)?;
    out.reserve(src.len());
    for &v in src {
        out.push(quantize_i8(v, scale));
    }
    Some(scale)
}

/// Decodes int8 codes back to `f32`: `out[i] = q[i] · scale`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn decode_i8(q: &[i8], scale: f32, out: &mut [f32]) {
    assert_eq!(q.len(), out.len(), "decode_i8: length mismatch");
    for (o, &c) in out.iter_mut().zip(q) {
        *o = c as f32 * scale;
    }
}

/// Converts an `f32` to IEEE 754 binary16 bits with round-to-nearest,
/// ties-to-even — including gradual underflow to subnormals, overflow to
/// `±inf` (anything with |x| ≥ 65520 after rounding), and NaN payload
/// quieting.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN: keep the class; quiet any NaN.
        return if man == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00
        };
    }
    let e = exp - 127; // unbiased

    if e > 15 {
        // Magnitude at least 2^16: past the largest rounding boundary.
        return sign | 0x7C00;
    }
    if e >= -14 {
        // Normal f16 range: drop 13 mantissa bits with RNE.
        let rem = man & 0x1FFF;
        let half = 0x1000;
        let mut m = man >> 13;
        if rem > half || (rem == half && (m & 1) == 1) {
            m += 1;
        }
        let mut e16 = (e + 15) as u32;
        if m == 0x400 {
            // Mantissa carry: 1.1111111111₂ rounded up to 10.0₂.
            m = 0;
            e16 += 1;
            if e16 >= 31 {
                return sign | 0x7C00;
            }
        }
        return sign | ((e16 << 10) as u16) | (m as u16);
    }
    if e < -25 {
        // Below half the smallest subnormal: rounds to ±0.
        return sign;
    }
    // Subnormal range: value = M · 2^(e−23) with the implicit bit made
    // explicit; the f16 code is round(value · 2^24) = round(M · 2^(e+1)),
    // i.e. an RNE right-shift by −(e+1) ∈ [14, 24]. A carry to 0x400 lands
    // exactly on the smallest normal's bit pattern, so no special case.
    let m = man | 0x0080_0000;
    let shift = (-e - 1) as u32;
    let kept = m >> shift;
    let rem = m & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    let mut m16 = kept;
    if rem > half || (rem == half && (kept & 1) == 1) {
        m16 += 1;
    }
    sign | m16 as u16
}

/// Converts IEEE 754 binary16 bits to the exactly-representable `f32`
/// (binary16 ⊂ binary32, so this direction is lossless).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;
    let bits = match exp {
        0 => {
            if man == 0 {
                sign // ±0
            } else {
                // Subnormal: normalize into f32's normal range.
                let mut e = 127 - 14;
                let mut m = man;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                sign | ((e as u32) << 23) | ((m & 0x03FF) << 13)
            }
        }
        31 => sign | 0x7F80_0000 | (man << 13), // ±inf / NaN
        _ => sign | ((exp + 127 - 15) << 23) | (man << 13),
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip_is_exact_noop() {
        let mut v = vec![0.125f32, -3.5, 1e-30, f32::NAN, f32::INFINITY];
        let orig_bits: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
        Quantization::F32.roundtrip_inplace(&mut v);
        let after: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
        assert_eq!(orig_bits, after);
    }

    #[test]
    fn f16_known_values() {
        // Exactly representable values are unchanged.
        for &(x, bits) in &[
            (0.0f32, 0x0000u16),
            (-0.0, 0x8000),
            (1.0, 0x3C00),
            (-2.0, 0xC000),
            (0.5, 0x3800),
            (65504.0, 0x7BFF),          // largest finite f16
            (2.0f32.powi(-14), 0x0400), // smallest normal
            (2.0f32.powi(-24), 0x0001), // smallest subnormal
        ] {
            assert_eq!(f32_to_f16_bits(x), bits, "encode {x}");
            assert_eq!(f16_bits_to_f32(bits), x, "decode {bits:#06x}");
        }
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xFC00);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Overflow rounds to inf (65520 is the RNE boundary and ties to the
        // even side, which is inf).
        assert_eq!(f32_to_f16_bits(65520.0), 0x7C00);
        assert_eq!(f32_to_f16_bits(65519.9), 0x7BFF);
        assert_eq!(f32_to_f16_bits(1e9), 0x7C00);
        // Underflow: half the smallest subnormal ties to even (zero);
        // anything above it rounds to the smallest subnormal.
        assert_eq!(f32_to_f16_bits(2.9802322e-8), 0x0000); // 2^-25
        assert_eq!(f32_to_f16_bits(3.0e-8), 0x0001);
    }

    #[test]
    fn f16_rne_tie_cases() {
        // 1 + 2^-11 sits exactly between 1.0 (mantissa 0, even) and
        // 1 + 2^-10 (mantissa 1, odd): RNE keeps 1.0.
        let tie_down = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(f32_to_f16_bits(tie_down), 0x3C00);
        // 1 + 3·2^-11 sits between mantissa 1 (odd) and 2 (even): RNE
        // rounds *up* to mantissa 2.
        let tie_up = 1.0f32 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f32_to_f16_bits(tie_up), 0x3C02);
        // Just below / above the first tie resolve by magnitude, not parity.
        assert_eq!(f32_to_f16_bits(tie_down - 1e-7), 0x3C00);
        assert_eq!(f32_to_f16_bits(tie_down + 1e-7), 0x3C01);
    }

    #[test]
    fn int8_rne_and_clamp() {
        // max|x| = 127 → scale 1: codes are RNE of the values themselves.
        let mut v = vec![127.0f32, 0.5, 1.5, 2.5, -0.5, -1.5, 100.2];
        Quantization::Int8.roundtrip_inplace(&mut v);
        assert_eq!(v, vec![127.0, 0.0, 2.0, 2.0, -0.0, -2.0, 100.0]);
        // The negative extreme maps to -127 (symmetric codebook).
        let mut v = vec![-127.0f32, 127.0];
        Quantization::Int8.roundtrip_inplace(&mut v);
        assert_eq!(v, vec![-127.0, 127.0]);
    }

    #[test]
    fn int8_skips_all_zero_and_nonfinite_tensors() {
        let mut v = vec![0.0f32; 8];
        Quantization::Int8.roundtrip_inplace(&mut v);
        assert_eq!(v, vec![0.0f32; 8]);
        let mut v = vec![1.0f32, f32::NAN, 2.0];
        Quantization::Int8.roundtrip_inplace(&mut v);
        assert!(v[1].is_nan());
        assert_eq!((v[0], v[2]), (1.0, 2.0));
        let mut v = vec![1.0f32, f32::INFINITY];
        Quantization::Int8.roundtrip_inplace(&mut v);
        assert_eq!(v[1], f32::INFINITY);
    }

    #[test]
    fn encode_decode_i8_matches_inplace_roundtrip() {
        let src: Vec<f32> = (0..1000)
            .map(|i| ((i * 37 % 211) as f32 - 105.0) * 0.013)
            .collect();
        let mut codes = Vec::new();
        let scale = encode_i8(&src, &mut codes).expect("finite nonzero tensor");
        let mut decoded = vec![0.0f32; src.len()];
        decode_i8(&codes, scale, &mut decoded);
        let mut inplace = src.clone();
        Quantization::Int8.roundtrip_inplace(&mut inplace);
        assert_eq!(decoded, inplace);
    }

    #[test]
    fn names_parse_back() {
        for q in [Quantization::F32, Quantization::F16, Quantization::Int8] {
            assert_eq!(Quantization::parse(q.name()), Some(q));
            assert_eq!(format!("{q}"), q.name());
        }
        assert_eq!(Quantization::parse("int4"), None);
    }
}
