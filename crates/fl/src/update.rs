//! Client model updates.
//!
//! Sign convention (see DESIGN.md): a client update is the flat delta
//! `Δθ_i = θ_i^t − θ^t` — the direction the client wants the global model to
//! move — and the server applies `θ^{t+1} = θ^t + λ · Aggregate({Δθ_i})`.
//! CollaPois' malicious delta `ψ(X − θ^t)` therefore pulls the model toward
//! the Trojaned model X.

use collapois_nn::kernels;
use collapois_stats::geometry::l2_norm;

/// One client's contribution to a training round.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUpdate {
    /// The submitting client's id.
    pub client_id: usize,
    /// Flat delta vector `θ_local − θ_global`.
    pub delta: Vec<f32>,
    /// Number of local samples (available to weighted aggregation rules;
    /// the paper's Eq. 2 averages uniformly over `|S_t|`).
    pub num_samples: usize,
}

impl ClientUpdate {
    /// Creates an update.
    pub fn new(client_id: usize, delta: Vec<f32>, num_samples: usize) -> Self {
        Self {
            client_id,
            delta,
            num_samples,
        }
    }

    /// l2 norm of the delta.
    pub fn norm(&self) -> f64 {
        l2_norm(&self.delta)
    }

    /// Parameter dimension.
    pub fn dim(&self) -> usize {
        self.delta.len()
    }
}

/// Uniform element-wise mean of the deltas (Eq. 2's `Σ Δθ / |S_t|`).
/// Returns a zero vector of `dim` when `updates` is empty.
///
/// # Panics
///
/// Panics if any update's dimension differs from `dim`.
pub fn mean_delta(updates: &[ClientUpdate], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    let mut acc = Vec::new();
    mean_delta_into(updates, &mut out, &mut acc);
    out
}

/// In-place [`mean_delta`]: writes the mean into `out` (length `dim`) using
/// `acc` as a reusable f64 accumulator. Bitwise identical to the allocating
/// path — same accumulation order, same rounding.
///
/// # Panics
///
/// Panics if any update's dimension differs from `out.len()`.
pub fn mean_delta_into(updates: &[ClientUpdate], out: &mut [f32], acc: &mut Vec<f64>) {
    let dim = out.len();
    acc.clear();
    acc.resize(dim, 0.0);
    for u in updates {
        assert_eq!(u.delta.len(), dim, "update dimension mismatch");
        kernels::acc_add(acc, &u.delta);
    }
    let n = updates.len().max(1) as f64;
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        *o = (a / n) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_updates() {
        let u1 = ClientUpdate::new(0, vec![1.0, 2.0], 10);
        let u2 = ClientUpdate::new(1, vec![3.0, 4.0], 20);
        assert_eq!(mean_delta(&[u1, u2], 2), vec![2.0, 3.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean_delta(&[], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn norm_and_dim() {
        let u = ClientUpdate::new(0, vec![3.0, 4.0], 1);
        assert!((u.norm() - 5.0).abs() < 1e-9);
        assert_eq!(u.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mean_rejects_mismatch() {
        let u1 = ClientUpdate::new(0, vec![1.0], 1);
        let _ = mean_delta(&[u1], 2);
    }

    #[test]
    fn mean_into_reuses_buffers() {
        let u1 = ClientUpdate::new(0, vec![1.0, 2.0], 10);
        let u2 = ClientUpdate::new(1, vec![3.0, 4.0], 20);
        let mut out = vec![9.0f32; 2];
        let mut acc = vec![7.0f64; 5]; // stale contents must not leak through
        mean_delta_into(&[u1.clone(), u2], &mut out, &mut acc);
        assert_eq!(out, vec![2.0, 3.0]);
        // Second call with different updates reuses the same buffers.
        mean_delta_into(&[u1], &mut out, &mut acc);
        assert_eq!(out, vec![1.0, 2.0]);
    }
}
