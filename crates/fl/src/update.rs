//! Client model updates.
//!
//! Sign convention (see DESIGN.md): a client update is the flat delta
//! `Δθ_i = θ_i^t − θ^t` — the direction the client wants the global model to
//! move — and the server applies `θ^{t+1} = θ^t + λ · Aggregate({Δθ_i})`.
//! CollaPois' malicious delta `ψ(X − θ^t)` therefore pulls the model toward
//! the Trojaned model X.

use collapois_nn::kernels;
use collapois_runtime::pool::WorkerPool;
use collapois_stats::geometry::l2_norm;

/// Updates per leaf of the fixed-shape reduction tree (DESIGN.md §9).
///
/// Aggregation sums are reassociated into per-chunk partial accumulators so
/// the chunks can run on different lanes; the chunk width is a constant, so
/// the tree's shape — and therefore every rounding step — depends only on
/// the number of updates, never on the worker count. With `n ≤ MEAN_CHUNK`
/// updates there is a single leaf and the sum order degenerates to the
/// plain serial accumulation.
pub(crate) const MEAN_CHUNK: usize = 8;

/// One client's contribution to a training round.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUpdate {
    /// The submitting client's id.
    pub client_id: usize,
    /// Flat delta vector `θ_local − θ_global`.
    pub delta: Vec<f32>,
    /// Number of local samples (available to weighted aggregation rules;
    /// the paper's Eq. 2 averages uniformly over `|S_t|`).
    pub num_samples: usize,
}

impl ClientUpdate {
    /// Creates an update.
    pub fn new(client_id: usize, delta: Vec<f32>, num_samples: usize) -> Self {
        Self {
            client_id,
            delta,
            num_samples,
        }
    }

    /// l2 norm of the delta.
    pub fn norm(&self) -> f64 {
        l2_norm(&self.delta)
    }

    /// Parameter dimension.
    pub fn dim(&self) -> usize {
        self.delta.len()
    }
}

/// Uniform element-wise mean of the deltas (Eq. 2's `Σ Δθ / |S_t|`).
/// Returns a zero vector of `dim` when `updates` is empty.
///
/// # Panics
///
/// Panics if any update's dimension differs from `dim`.
pub fn mean_delta(updates: &[ClientUpdate], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    let mut acc = Vec::new();
    mean_delta_into(updates, &mut out, &mut acc);
    out
}

/// In-place [`mean_delta`]: writes the mean into `out` (length `dim`) using
/// `acc` as a reusable f64 accumulator. Bitwise identical to the allocating
/// path and to [`mean_delta_pooled_into`] at any worker count — all three
/// share the fixed-shape reduction tree.
///
/// # Panics
///
/// Panics if any update's dimension differs from `out.len()`.
pub fn mean_delta_into(updates: &[ClientUpdate], out: &mut [f32], acc: &mut Vec<f64>) {
    tree_reduce_into(updates.len(), out, acc, |c, row| {
        mean_leaf(updates, c, row);
    });
}

/// Parallel [`mean_delta_into`]: leaf chunks of the reduction tree fan out
/// over `pool`'s lanes. The tree shape is fixed by the update count (see
/// [`MEAN_CHUNK`]), so the result is bitwise identical to the serial path
/// at every worker count.
///
/// # Panics
///
/// Panics if any update's dimension differs from `out.len()`.
pub fn mean_delta_pooled_into(
    updates: &[ClientUpdate],
    out: &mut [f32],
    acc: &mut Vec<f64>,
    pool: &WorkerPool,
) {
    tree_reduce_pooled_into(updates.len(), out, acc, pool, |c, row| {
        mean_leaf(updates, c, row);
    });
}

/// Accumulates leaf chunk `c`'s updates into `row` (one tree leaf).
fn mean_leaf(updates: &[ClientUpdate], c: usize, row: &mut [f64]) {
    let dim = row.len();
    let lo = c * MEAN_CHUNK;
    let hi = (lo + MEAN_CHUNK).min(updates.len());
    for u in &updates[lo..hi] {
        assert_eq!(u.delta.len(), dim, "update dimension mismatch");
        kernels::acc_add(row, &u.delta);
    }
}

/// Weighted element-wise mean `Σ wᵢ·Δθᵢ / Σ wᵢ` through the same
/// fixed-shape reduction tree as [`mean_delta_pooled_into`] (staleness
/// weighting for buffered-async FedBuff merges). Leaves accumulate
/// `wᵢ·Δθᵢ` in update order and the root is scaled by `1/Σ wᵢ`, so the
/// result is bitwise identical at every worker count. With all weights
/// equal to 1 this reduces exactly to the uniform mean. Writes zeros when
/// `updates` is empty or the weight sum is zero.
///
/// # Panics
///
/// Panics if `weights.len() != updates.len()` or any update's dimension
/// differs from `out.len()`.
pub fn weighted_mean_delta_pooled_into(
    updates: &[ClientUpdate],
    weights: &[f64],
    out: &mut [f32],
    acc: &mut Vec<f64>,
    pool: &WorkerPool,
) {
    assert_eq!(
        weights.len(),
        updates.len(),
        "one weight per update required"
    );
    let wsum: f64 = weights.iter().sum();
    let denom = if wsum > 0.0 { wsum } else { 1.0 };
    tree_reduce_scaled_pooled_into(updates.len(), out, acc, pool, denom, |c, row| {
        weighted_leaf(updates, weights, c, row);
    });
}

/// Serial [`weighted_mean_delta_pooled_into`] (same tree, same bits).
///
/// # Panics
///
/// Panics if `weights.len() != updates.len()` or any update's dimension
/// differs from `out.len()`.
pub fn weighted_mean_delta_into(
    updates: &[ClientUpdate],
    weights: &[f64],
    out: &mut [f32],
    acc: &mut Vec<f64>,
) {
    assert_eq!(
        weights.len(),
        updates.len(),
        "one weight per update required"
    );
    let wsum: f64 = weights.iter().sum();
    let denom = if wsum > 0.0 { wsum } else { 1.0 };
    let dim = out.len();
    if dim == 0 {
        return;
    }
    let nchunks = updates.len().div_ceil(MEAN_CHUNK).max(1);
    acc.clear();
    acc.resize(nchunks * dim, 0.0);
    for (c, row) in acc.chunks_mut(dim).enumerate() {
        weighted_leaf(updates, weights, c, row);
    }
    merge_and_scale(acc, nchunks, dim, denom, out);
}

/// Accumulates leaf chunk `c`'s weighted updates into `row`.
fn weighted_leaf(updates: &[ClientUpdate], weights: &[f64], c: usize, row: &mut [f64]) {
    let dim = row.len();
    let lo = c * MEAN_CHUNK;
    let hi = (lo + MEAN_CHUNK).min(updates.len());
    for (u, &w) in updates[lo..hi].iter().zip(&weights[lo..hi]) {
        assert_eq!(u.delta.len(), dim, "update dimension mismatch");
        for (r, &d) in row.iter_mut().zip(&u.delta) {
            *r += w * d as f64;
        }
    }
}

/// Serial fixed-shape tree reduction: `leaf(c, row)` accumulates leaf chunk
/// `c` (update indices `c·MEAN_CHUNK ..`) into its borrowed `dim`-length
/// partial-accumulator row; the rows are then merged by a deterministic
/// pairwise (stride-doubling) tree and scaled by `1/n` into `out`.
///
/// The leaf must write a function of `(c, n)` only — never of which thread
/// runs it — which together with the worker-count-independent chunking
/// makes [`tree_reduce_pooled_into`] bitwise identical to this path.
pub(crate) fn tree_reduce_into<L>(n: usize, out: &mut [f32], acc: &mut Vec<f64>, leaf: L)
where
    L: Fn(usize, &mut [f64]),
{
    let dim = out.len();
    if dim == 0 {
        return;
    }
    let nchunks = n.div_ceil(MEAN_CHUNK).max(1);
    acc.clear();
    acc.resize(nchunks * dim, 0.0);
    for (c, row) in acc.chunks_mut(dim).enumerate() {
        leaf(c, row);
    }
    merge_and_scale(acc, nchunks, dim, n.max(1) as f64, out);
}

/// [`tree_reduce_into`] with the leaf chunks fanned out over `pool`.
pub(crate) fn tree_reduce_pooled_into<L>(
    n: usize,
    out: &mut [f32],
    acc: &mut Vec<f64>,
    pool: &WorkerPool,
    leaf: L,
) where
    L: Fn(usize, &mut [f64]) + Sync,
{
    tree_reduce_scaled_pooled_into(n, out, acc, pool, n.max(1) as f64, leaf);
}

/// [`tree_reduce_pooled_into`] with an arbitrary positive denominator:
/// `out = root / denom`. The uniform mean is the `denom = max(n, 1)`
/// special case; weighted means pass `Σ wᵢ`.
pub(crate) fn tree_reduce_scaled_pooled_into<L>(
    n: usize,
    out: &mut [f32],
    acc: &mut Vec<f64>,
    pool: &WorkerPool,
    denom: f64,
    leaf: L,
) where
    L: Fn(usize, &mut [f64]) + Sync,
{
    let dim = out.len();
    if dim == 0 {
        return;
    }
    let nchunks = n.div_ceil(MEAN_CHUNK).max(1);
    acc.clear();
    acc.resize(nchunks * dim, 0.0);
    pool.for_chunks_mut(acc, dim, |c, row| leaf(c, row));
    merge_and_scale(acc, nchunks, dim, denom, out);
}

/// Pairwise stride-doubling merge of the `nchunks` partial rows in `acc`
/// (row 0 absorbs the root), then `out = (root / denom) as f32`. Runs
/// on the dispatching thread in both the serial and pooled paths, so the
/// merge order is one fixed tree.
fn merge_and_scale(acc: &mut [f64], nchunks: usize, dim: usize, denom: f64, out: &mut [f32]) {
    let mut stride = 1usize;
    while stride < nchunks {
        let mut base = 0usize;
        while base + stride < nchunks {
            let (lo, hi) = acc.split_at_mut((base + stride) * dim);
            let dst = &mut lo[base * dim..base * dim + dim];
            let src = &hi[..dim];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
            base += 2 * stride;
        }
        stride *= 2;
    }
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        *o = (a / denom) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_updates() {
        let u1 = ClientUpdate::new(0, vec![1.0, 2.0], 10);
        let u2 = ClientUpdate::new(1, vec![3.0, 4.0], 20);
        assert_eq!(mean_delta(&[u1, u2], 2), vec![2.0, 3.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean_delta(&[], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn norm_and_dim() {
        let u = ClientUpdate::new(0, vec![3.0, 4.0], 1);
        assert!((u.norm() - 5.0).abs() < 1e-9);
        assert_eq!(u.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mean_rejects_mismatch() {
        let u1 = ClientUpdate::new(0, vec![1.0], 1);
        let _ = mean_delta(&[u1], 2);
    }

    #[test]
    fn pooled_mean_is_bitwise_identical_to_serial() {
        // 37 updates spans several tree leaves plus a ragged tail; the
        // pooled path must reproduce the serial tree exactly at every
        // worker count.
        let dim = 19;
        let updates: Vec<ClientUpdate> = (0..37)
            .map(|i| {
                let delta: Vec<f32> = (0..dim)
                    .map(|j| ((i * 31 + j * 7) as f32).sin() * 3.0)
                    .collect();
                ClientUpdate::new(i, delta, 10)
            })
            .collect();
        let mut serial = vec![0.0f32; dim];
        let mut acc = Vec::new();
        mean_delta_into(&updates, &mut serial, &mut acc);
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let mut pooled = vec![0.0f32; dim];
            let mut acc2 = Vec::new();
            mean_delta_pooled_into(&updates, &mut pooled, &mut acc2, &pool);
            let a: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = pooled.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "workers={workers}");
        }
    }

    #[test]
    fn tree_mean_matches_plain_mean_within_reassociation() {
        // The fixed-shape tree reassociates the sum; the result must stay
        // within a few ulps of the naive left-to-right mean.
        let updates: Vec<ClientUpdate> = (0..29)
            .map(|i| ClientUpdate::new(i, vec![(i as f32).cos(); 5], 1))
            .collect();
        let got = mean_delta(&updates, 5);
        let naive: f64 =
            updates.iter().map(|u| u.delta[0] as f64).sum::<f64>() / updates.len() as f64;
        for &g in &got {
            assert!((g as f64 - naive).abs() < 1e-6, "{g} vs {naive}");
        }
    }

    #[test]
    fn weighted_mean_with_unit_weights_matches_uniform_mean_bitwise() {
        let dim = 17;
        let updates: Vec<ClientUpdate> = (0..23)
            .map(|i| {
                let delta: Vec<f32> = (0..dim)
                    .map(|j| ((i * 13 + j * 5) as f32).cos() * 2.0)
                    .collect();
                ClientUpdate::new(i, delta, 1)
            })
            .collect();
        let weights = vec![1.0f64; updates.len()];
        let mut uniform = vec![0.0f32; dim];
        let mut acc = Vec::new();
        mean_delta_into(&updates, &mut uniform, &mut acc);
        let mut weighted = vec![0.0f32; dim];
        let mut acc2 = Vec::new();
        weighted_mean_delta_into(&updates, &weights, &mut weighted, &mut acc2);
        let a: Vec<u32> = uniform.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = weighted.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "unit weights must degenerate to the uniform mean");
    }

    #[test]
    fn pooled_weighted_mean_is_bitwise_identical_to_serial() {
        let dim = 11;
        let updates: Vec<ClientUpdate> = (0..37)
            .map(|i| {
                let delta: Vec<f32> = (0..dim).map(|j| ((i * 7 + j * 3) as f32).sin()).collect();
                ClientUpdate::new(i, delta, 1)
            })
            .collect();
        let weights: Vec<f64> = (0..updates.len())
            .map(|i| 1.0 / (1.0 + i as f64).sqrt())
            .collect();
        let mut serial = vec![0.0f32; dim];
        let mut acc = Vec::new();
        weighted_mean_delta_into(&updates, &weights, &mut serial, &mut acc);
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let mut pooled = vec![0.0f32; dim];
            let mut acc2 = Vec::new();
            weighted_mean_delta_pooled_into(&updates, &weights, &mut pooled, &mut acc2, &pool);
            let a: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = pooled.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "workers={workers}");
        }
    }

    #[test]
    fn weighted_mean_weights_the_updates() {
        let u1 = ClientUpdate::new(0, vec![1.0, 0.0], 1);
        let u2 = ClientUpdate::new(1, vec![0.0, 1.0], 1);
        let mut out = vec![0.0f32; 2];
        let mut acc = Vec::new();
        weighted_mean_delta_into(&[u1, u2], &[3.0, 1.0], &mut out, &mut acc);
        assert!((out[0] - 0.75).abs() < 1e-7);
        assert!((out[1] - 0.25).abs() < 1e-7);
    }

    #[test]
    fn weighted_mean_of_empty_or_zero_weight_is_zero() {
        let mut out = vec![5.0f32; 2];
        let mut acc = Vec::new();
        weighted_mean_delta_into(&[], &[], &mut out, &mut acc);
        assert_eq!(out, vec![0.0, 0.0]);
        let u = ClientUpdate::new(0, vec![1.0, 2.0], 1);
        let mut out2 = vec![5.0f32; 2];
        weighted_mean_delta_into(&[u], &[0.0], &mut out2, &mut acc);
        assert_eq!(out2, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_into_reuses_buffers() {
        let u1 = ClientUpdate::new(0, vec![1.0, 2.0], 10);
        let u2 = ClientUpdate::new(1, vec![3.0, 4.0], 20);
        let mut out = vec![9.0f32; 2];
        let mut acc = vec![7.0f64; 5]; // stale contents must not leak through
        mean_delta_into(&[u1.clone(), u2], &mut out, &mut acc);
        assert_eq!(out, vec![2.0, 3.0]);
        // Second call with different updates reuses the same buffers.
        mean_delta_into(&[u1], &mut out, &mut acc);
        assert_eq!(out, vec![1.0, 2.0]);
    }
}
