//! MetaFed [Chen et al., TNNLS 2023] — personalization via cyclic knowledge
//! distillation.
//!
//! Each client keeps a persistent personal model. When sampled, the client
//! (1) distills the circulating common knowledge (the global model's soft
//! predictions on local data) into its personal model, then (2) trains the
//! personal model on its local data, and reports the resulting delta as its
//! contribution to the common model. This is the single-federation ring
//! simplification documented in DESIGN.md §1; the paper's observation — in
//! highly non-IID settings sparse "neighbours" limit knowledge transfer and
//! restrain backdoor spread — emerges from the distillation bottleneck.

use super::{LocalOutcome, PersonalStore, Personalization, StateCommit};
use crate::config::FlConfig;
use crate::scratch::ClientScratch;
use collapois_data::sample::Dataset;
use collapois_nn::optim::Sgd;
use rand::rngs::StdRng;

/// MetaFed personalization strategy.
#[derive(Debug, Clone)]
pub struct MetaFed {
    temperature: f64,
    distill_steps: usize,
    personal: PersonalStore,
}

impl MetaFed {
    /// Creates MetaFed with the given distillation temperature and number of
    /// distillation steps per round.
    ///
    /// # Panics
    ///
    /// Panics if `temperature <= 0`.
    pub fn new(temperature: f64, distill_steps: usize) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        Self {
            temperature,
            distill_steps,
            personal: PersonalStore::default(),
        }
    }
}

impl Personalization for MetaFed {
    fn name(&self) -> &'static str {
        "metafed"
    }

    fn init(&mut self, num_clients: usize, _dim: usize) {
        self.personal.init(num_clients);
    }

    fn local_train(
        &self,
        client_id: usize,
        global: &[f32],
        data: &Dataset,
        cfg: &FlConfig,
        scratch: &mut ClientScratch,
        rng: &mut StdRng,
    ) -> LocalOutcome {
        assert!(!data.is_empty(), "client has no training data");
        // Teacher: the circulating common model, hosted on the arena's
        // lazily created auxiliary instance.
        scratch.ensure_aux();
        let teacher = scratch.aux.as_mut().expect("aux just ensured");
        teacher.load_params_into(global);

        // Student: the client's persistent personal model (starts from the
        // common model on first participation).
        match self.personal.get(client_id) {
            Some(p) => scratch.model.load_params_into(p),
            None => scratch.model.load_params_into(global),
        }
        let mut opt = Sgd::new(cfg.client_lr);

        // Stage 1 — common-knowledge distillation (the teacher's soft
        // targets are allocated per step; distillation is off the
        // steady-state FedAvg hot path).
        for _ in 0..self.distill_steps {
            data.minibatch_into(
                rng,
                cfg.batch_size,
                &mut scratch.idx,
                &mut scratch.x,
                &mut scratch.y,
            );
            let targets = teacher.predict_proba(&scratch.x);
            scratch
                .model
                .distill_batch(&scratch.x, &targets, self.temperature, &mut opt);
        }
        // Stage 2 — personalization on local data.
        for _ in 0..cfg.local_steps {
            data.minibatch_into(
                rng,
                cfg.batch_size,
                &mut scratch.idx,
                &mut scratch.x,
                &mut scratch.y,
            );
            scratch
                .model
                .train_batch_ws(&scratch.x, &scratch.y, &mut opt, &mut scratch.ws);
        }
        let personal = scratch.model.params();
        scratch.delta.clear();
        scratch
            .delta
            .extend(personal.iter().zip(global).map(|(p, g)| p - g));
        LocalOutcome {
            delta: std::mem::take(&mut scratch.delta),
            commit: StateCommit {
                personal: Some(personal),
                ..StateCommit::none()
            },
        }
    }

    fn commit(&mut self, client_id: usize, commit: StateCommit) {
        if let Some(personal) = commit.personal {
            self.personal.set(client_id, personal);
        }
    }

    fn eval_params(&self, client_id: usize, global: &[f32]) -> Vec<f32> {
        match self.personal.get(client_id) {
            Some(p) => p.clone(),
            None => global.to_vec(),
        }
    }

    fn export_state(&self) -> Vec<Option<Vec<f32>>> {
        self.personal.export()
    }

    fn import_state(&mut self, state: Vec<Option<Vec<f32>>>) {
        self.personal.import(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_nn::zoo::ModelSpec;
    use rand::SeedableRng;

    fn toy_data() -> Dataset {
        let mut ds = Dataset::empty(&[2], 2);
        for i in 0..32 {
            let c = i % 2;
            let v = if c == 0 { 0.0 } else { 1.0 };
            ds.push(&[v, 1.0 - v], c);
        }
        ds
    }

    #[test]
    fn personal_model_persists_across_rounds() {
        let spec = ModelSpec::mlp(2, &[4], 2);
        let cfg = FlConfig::quick(spec.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let model = spec.build(&mut rng);
        let global = model.params();
        let mut scratch = ClientScratch::for_model(&model);
        let mut mf = MetaFed::new(2.0, 2);
        mf.init(2, global.len());
        let out = mf.local_train(0, &global, &toy_data(), &cfg, &mut scratch, &mut rng);
        mf.commit(0, out.commit);
        let p1 = mf.eval_params(0, &global);
        assert_ne!(p1, global);
        // A second round starts from the stored personal model, not global.
        let out = mf.local_train(0, &global, &toy_data(), &cfg, &mut scratch, &mut rng);
        mf.commit(0, out.commit);
        let p2 = mf.eval_params(0, &global);
        assert_ne!(p2, p1);
        // Never-sampled client falls back to global.
        assert_eq!(mf.eval_params(1, &global), global);
    }

    #[test]
    fn personal_model_learns_local_task() {
        let spec = ModelSpec::mlp(2, &[8], 2);
        let mut cfg = FlConfig::quick(spec.clone());
        cfg.local_steps = 30;
        cfg.client_lr = 0.3;
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = spec.build(&mut rng);
        let global = model.params();
        let mut scratch = ClientScratch::for_model(&model);
        let mut mf = MetaFed::new(2.0, 2);
        mf.init(1, global.len());
        let data = toy_data();
        let out = mf.local_train(0, &global, &data, &cfg, &mut scratch, &mut rng);
        mf.commit(0, out.commit);
        model.set_params(&mf.eval_params(0, &global));
        let (x, y) = data.as_batch();
        assert!(model.evaluate(&x, &y) > 0.9);
    }
}
