//! Clustered federated learning [Ghosh et al., NeurIPS 2020] — the paper's
//! third personalization category (§II-A): assign each client to one of `k`
//! cluster models and aggregate locally-trained updates within clusters.
//!
//! IFCA-style realization on top of the single-global-model protocol: the
//! strategy keeps `k` cluster models initialized as perturbations of the
//! global model. A sampled client picks the cluster whose model fits its
//! local data best (lowest loss), trains that cluster model locally, and
//! reports the delta **relative to the global model** (so server-side
//! aggregation and attacks operate unchanged); the trained parameters are
//! stored back into the cluster. Evaluation uses the client's last-selected
//! cluster model.
//!
//! Under the compute/commit contract, cluster initialization and anchoring
//! happen once per round in [`Personalization::begin_round`]; every client
//! of the round selects against that same cluster snapshot, and trained
//! cluster parameters land at commit time in sampled order (last writer per
//! cluster wins). This is what makes the strategy schedule-independent.

use super::{LocalOutcome, Personalization, StateCommit};
use crate::config::FlConfig;
use crate::scratch::ClientScratch;
use collapois_data::sample::Dataset;
use collapois_nn::optim::Sgd;
use rand::rngs::StdRng;
use rand::Rng;

/// IFCA-style clustered personalization.
#[derive(Debug, Clone)]
pub struct Clustered {
    k: usize,
    /// Cluster models (lazily initialized from the first-seen global).
    clusters: Vec<Vec<f32>>,
    /// Each client's last cluster assignment.
    assignment: Vec<Option<usize>>,
    /// Blend weight pulling cluster models toward the fresh global each
    /// round (keeps clusters anchored to the federation).
    anchor: f32,
}

impl Clustered {
    /// Creates a clustered strategy with `k` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one cluster");
        Self {
            k,
            clusters: Vec::new(),
            assignment: Vec::new(),
            anchor: 0.1,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The last cluster `client_id` selected, if any.
    pub fn assignment_of(&self, client_id: usize) -> Option<usize> {
        self.assignment.get(client_id).copied().flatten()
    }

    fn ensure_clusters<R: Rng + ?Sized>(&mut self, global: &[f32], rng: &mut R) {
        if !self.clusters.is_empty() {
            return;
        }
        self.clusters = (0..self.k)
            .map(|_| {
                global
                    .iter()
                    .map(|&g| g + rng.gen_range(-0.01f32..0.01))
                    .collect()
            })
            .collect();
    }

    /// Picks the cluster with the lowest loss on a sample of `data`.
    fn select_cluster(
        &self,
        scratch: &mut ClientScratch,
        data: &Dataset,
        cfg: &FlConfig,
        rng: &mut StdRng,
    ) -> usize {
        data.minibatch_into(
            rng,
            cfg.batch_size.max(16),
            &mut scratch.idx,
            &mut scratch.x,
            &mut scratch.y,
        );
        let mut best = 0usize;
        let mut best_loss = f64::INFINITY;
        for (c, params) in self.clusters.iter().enumerate() {
            scratch.model.load_params_into(params);
            let (loss, _) = scratch
                .model
                .loss_ws(&scratch.x, &scratch.y, &mut scratch.ws);
            if loss < best_loss {
                best_loss = loss;
                best = c;
            }
        }
        best
    }
}

impl Personalization for Clustered {
    fn name(&self) -> &'static str {
        "clustered"
    }

    fn init(&mut self, num_clients: usize, _dim: usize) {
        self.assignment = vec![None; num_clients];
        self.clusters.clear();
    }

    fn begin_round(&mut self, global: &[f32], rng: &mut StdRng) {
        self.ensure_clusters(global, rng);
        // Anchor clusters toward the current federation model.
        for cluster in &mut self.clusters {
            for (c, &g) in cluster.iter_mut().zip(global) {
                *c += self.anchor * (g - *c);
            }
        }
    }

    fn local_train(
        &self,
        _client_id: usize,
        global: &[f32],
        data: &Dataset,
        cfg: &FlConfig,
        scratch: &mut ClientScratch,
        rng: &mut StdRng,
    ) -> LocalOutcome {
        assert!(!data.is_empty(), "client has no training data");
        assert!(
            !self.clusters.is_empty(),
            "begin_round must run before local_train"
        );
        let cluster = self.select_cluster(scratch, data, cfg, rng);
        scratch.model.load_params_into(&self.clusters[cluster]);
        let mut opt = Sgd::new(cfg.client_lr);
        for _ in 0..cfg.local_steps {
            data.minibatch_into(
                rng,
                cfg.batch_size,
                &mut scratch.idx,
                &mut scratch.x,
                &mut scratch.y,
            );
            scratch
                .model
                .train_batch_ws(&scratch.x, &scratch.y, &mut opt, &mut scratch.ws);
        }
        let trained = scratch.model.params();
        scratch.delta.clear();
        scratch
            .delta
            .extend(trained.iter().zip(global).map(|(t, g)| t - g));
        LocalOutcome {
            delta: std::mem::take(&mut scratch.delta),
            commit: StateCommit {
                cluster: Some((cluster, trained)),
                ..StateCommit::none()
            },
        }
    }

    fn commit(&mut self, client_id: usize, commit: StateCommit) {
        if let Some((cluster, trained)) = commit.cluster {
            if client_id < self.assignment.len() {
                self.assignment[client_id] = Some(cluster);
            }
            if cluster < self.clusters.len() {
                self.clusters[cluster] = trained;
            }
        }
    }

    fn eval_params(&self, client_id: usize, global: &[f32]) -> Vec<f32> {
        match self.assignment.get(client_id).copied().flatten() {
            Some(c) if c < self.clusters.len() => self.clusters[c].clone(),
            _ => global.to_vec(),
        }
    }

    /// Layout: `n` assignment entries (single-element vectors holding the
    /// cluster index) followed by the cluster models (absent before the
    /// first round initializes them).
    fn export_state(&self) -> Vec<Option<Vec<f32>>> {
        let mut state: Vec<Option<Vec<f32>>> = self
            .assignment
            .iter()
            .map(|a| a.map(|c| vec![c as f32]))
            .collect();
        state.extend(self.clusters.iter().cloned().map(Some));
        state
    }

    fn import_state(&mut self, state: Vec<Option<Vec<f32>>>) {
        let n = self.assignment.len();
        debug_assert!(
            state.len() == n || state.len() == n + self.k,
            "Clustered state layout mismatch"
        );
        let mut it = state.into_iter();
        self.assignment = it
            .by_ref()
            .take(n)
            .map(|entry| entry.and_then(|v| v.first().map(|&c| c as usize)))
            .collect();
        self.clusters = it.flatten().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_nn::model::Sequential;
    use collapois_nn::zoo::ModelSpec;
    use rand::SeedableRng;

    /// Two clearly distinct client populations.
    fn population_data(flip: bool) -> Dataset {
        let mut ds = Dataset::empty(&[2], 2);
        for i in 0..32 {
            let c = i % 2;
            let v = if (c == 0) ^ flip { 0.0 } else { 1.0 };
            ds.push(&[v, 1.0 - v], c);
        }
        ds
    }

    fn setup() -> (FlConfig, Sequential, Vec<f32>) {
        let spec = ModelSpec::mlp(2, &[8], 2);
        let mut cfg = FlConfig::quick(spec.clone());
        cfg.local_steps = 20;
        cfg.client_lr = 0.3;
        let mut rng = StdRng::seed_from_u64(0);
        let model = spec.build(&mut rng);
        let global = model.params();
        (cfg, model, global)
    }

    fn train_and_commit(
        cl: &mut Clustered,
        cid: usize,
        global: &[f32],
        data: &Dataset,
        cfg: &FlConfig,
        scratch: &mut ClientScratch,
        rng: &mut StdRng,
    ) {
        let out = cl.local_train(cid, global, data, cfg, scratch, rng);
        cl.commit(cid, out.commit);
    }

    #[test]
    fn clients_with_conflicting_data_land_in_different_clusters() {
        let (cfg, mut model, global) = setup();
        let mut scratch = ClientScratch::for_model(&model);
        let mut cl = Clustered::new(2);
        cl.init(2, global.len());
        let mut rng = StdRng::seed_from_u64(1);
        let a = population_data(false);
        let b = population_data(true);
        // Several alternating rounds so each specializes a cluster.
        for _ in 0..6 {
            cl.begin_round(&global, &mut rng);
            train_and_commit(&mut cl, 0, &global, &a, &cfg, &mut scratch, &mut rng);
            train_and_commit(&mut cl, 1, &global, &b, &cfg, &mut scratch, &mut rng);
        }
        let c0 = cl.assignment_of(0).unwrap();
        let c1 = cl.assignment_of(1).unwrap();
        assert_ne!(c0, c1, "conflicting populations should separate");
        // Each client's cluster model fits its own data.
        model.set_params(&cl.eval_params(0, &global));
        let (xa, ya) = a.as_batch();
        assert!(model.evaluate(&xa, &ya) > 0.9);
        model.set_params(&cl.eval_params(1, &global));
        let (xb, yb) = b.as_batch();
        assert!(model.evaluate(&xb, &yb) > 0.9);
    }

    #[test]
    fn unseen_client_evaluates_on_global() {
        let (_, _, global) = setup();
        let mut cl = Clustered::new(3);
        cl.init(4, global.len());
        assert_eq!(cl.eval_params(2, &global), global);
        assert_eq!(cl.assignment_of(2), None);
        assert_eq!(cl.k(), 3);
    }

    #[test]
    fn state_survives_export_import() {
        let (cfg, model, global) = setup();
        let mut scratch = ClientScratch::for_model(&model);
        let mut cl = Clustered::new(2);
        cl.init(2, global.len());
        let mut rng = StdRng::seed_from_u64(2);
        cl.begin_round(&global, &mut rng);
        train_and_commit(
            &mut cl,
            1,
            &global,
            &population_data(false),
            &cfg,
            &mut scratch,
            &mut rng,
        );
        let state = cl.export_state();
        assert_eq!(state.len(), 2 + 2); // 2 assignments + 2 clusters
        let mut restored = Clustered::new(2);
        restored.init(2, global.len());
        restored.import_state(state);
        assert_eq!(restored.assignment_of(1), cl.assignment_of(1));
        assert_eq!(restored.eval_params(1, &global), cl.eval_params(1, &global));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn rejects_zero_clusters() {
        let _ = Clustered::new(0);
    }
}
