//! SCAFFOLD [Karimireddy et al., ICML 2020] — stochastic controlled
//! averaging for federated learning.
//!
//! Non-IID shards make each client's local gradient drift toward its own
//! distribution ("client drift"); SCAFFOLD cancels the drift with control
//! variates: a server variate `c` (estimate of the global gradient) and a
//! per-client variate `c_i` (estimate of client `i`'s gradient). Each local
//! step is corrected by `−η(c − c_i)`, and after `K` steps the client
//! refreshes its variate via option II of the paper:
//!
//! ```text
//! c_i⁺ = c_i − c + (x − y_i)/(K·η) = c_i − c − Δ_i/(K·η)
//! c    ← c + (1/N)·Σ_{i∈S} (c_i⁺ − c_i)
//! ```
//!
//! which maintains `c = (1/N)·Σ_i c_i` inductively from the all-zero start.
//!
//! The strategy fits the compute/commit split: `local_train` reads the
//! `(c, c_i)` snapshot taken at `begin_round` and returns `c_i⁺` in the
//! [`StateCommit::ctrl`] slot; `commit` applies the variate swap and folds
//! the server increment in sampled-client order, so any worker count
//! produces bitwise-identical state. Evaluation uses the global model —
//! SCAFFOLD trains one shared model, not per-client ones.

use super::{LocalOutcome, Personalization, StateCommit};
use crate::client::local_sgd_delta_corrected_into;
use crate::config::FlConfig;
use crate::scratch::ClientScratch;
use collapois_data::sample::Dataset;
use rand::rngs::StdRng;

/// SCAFFOLD variance-reduced aggregation strategy.
#[derive(Debug, Clone, Default)]
pub struct Scaffold {
    /// Server control variate `c` (zeros until the first commit lands).
    server: Vec<f32>,
    /// Per-client control variates; `None` reads as zeros (the client has
    /// never participated).
    clients: Vec<Option<Vec<f32>>>,
    num_clients: usize,
}

impl Scaffold {
    /// Creates the strategy (state is allocated in `init`).
    pub fn new() -> Self {
        Self::default()
    }

    /// The server control variate `c`.
    pub fn server_control(&self) -> &[f32] {
        &self.server
    }

    /// Client `id`'s control variate `c_i`, if it ever participated.
    pub fn client_control(&self, id: usize) -> Option<&[f32]> {
        self.clients.get(id).and_then(Option::as_deref)
    }
}

impl Personalization for Scaffold {
    fn name(&self) -> &'static str {
        "scaffold"
    }

    fn init(&mut self, num_clients: usize, dim: usize) {
        self.server = vec![0.0; dim];
        self.clients = vec![None; num_clients];
        self.num_clients = num_clients;
    }

    fn local_train(
        &self,
        client_id: usize,
        global: &[f32],
        data: &Dataset,
        cfg: &FlConfig,
        scratch: &mut ClientScratch,
        rng: &mut StdRng,
    ) -> LocalOutcome {
        let ci = self.clients.get(client_id).and_then(Option::as_deref);
        // Correction c − c_i into the spare flat buffer (taken out of the
        // arena so the trainer can borrow the rest of it mutably).
        let mut corr = std::mem::take(&mut scratch.params2);
        corr.clear();
        match ci {
            Some(ci) => corr.extend(self.server.iter().zip(ci).map(|(c, i)| c - i)),
            None => corr.extend_from_slice(&self.server),
        }
        local_sgd_delta_corrected_into(rng, scratch, global, data, cfg, &corr);
        scratch.params2 = corr;
        // Option II variate refresh: c_i⁺ = c_i − c − Δ/(K·η).
        let scale = 1.0 / (cfg.local_steps.max(1) as f32 * cfg.client_lr as f32);
        let ctrl: Vec<f32> = (0..global.len())
            .map(|k| {
                let ci_k = ci.map_or(0.0, |v| v[k]);
                ci_k - self.server[k] - scratch.delta[k] * scale
            })
            .collect();
        LocalOutcome {
            delta: std::mem::take(&mut scratch.delta),
            commit: StateCommit {
                ctrl: Some(ctrl),
                ..StateCommit::none()
            },
        }
    }

    fn commit(&mut self, client_id: usize, commit: StateCommit) {
        let Some(ctrl) = commit.ctrl else { return };
        if client_id >= self.clients.len() {
            return;
        }
        // Fold (c_i⁺ − c_i)/N into the server variate, then swap c_i.
        // Commits run sequentially in sampled order, so the accumulation
        // order — and therefore the f32 result — is schedule-independent.
        let inv_n = 1.0 / self.num_clients.max(1) as f32;
        match self.clients[client_id].as_deref() {
            Some(old) => {
                for ((c, new), old) in self.server.iter_mut().zip(&ctrl).zip(old) {
                    *c += (new - old) * inv_n;
                }
            }
            None => {
                for (c, new) in self.server.iter_mut().zip(&ctrl) {
                    *c += new * inv_n;
                }
            }
        }
        self.clients[client_id] = Some(ctrl);
    }

    fn eval_params(&self, _client_id: usize, global: &[f32]) -> Vec<f32> {
        global.to_vec()
    }

    /// Layout: slot 0 holds the server variate `c`, slots `1..=N` the
    /// per-client variates.
    fn export_state(&self) -> Vec<Option<Vec<f32>>> {
        let mut out = Vec::with_capacity(self.clients.len() + 1);
        out.push(Some(self.server.clone()));
        out.extend(self.clients.iter().cloned());
        out
    }

    fn import_state(&mut self, mut state: Vec<Option<Vec<f32>>>) {
        if state.is_empty() {
            return;
        }
        let rest = state.split_off(1);
        if let Some(Some(server)) = state.into_iter().next() {
            self.server = server;
        }
        self.clients = rest;
        self.num_clients = self.clients.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::personalize::NoPersonalization;
    use collapois_nn::zoo::ModelSpec;
    use rand::SeedableRng;

    fn toy_data(shift: f32) -> Dataset {
        let mut ds = Dataset::empty(&[2], 2);
        for i in 0..32 {
            let c = i % 2;
            let v = if c == 0 { 0.0 } else { 1.0 };
            ds.push(&[v + shift, 1.0 - v - shift], c);
        }
        ds
    }

    fn setup() -> (FlConfig, Vec<f32>, ClientScratch) {
        let spec = ModelSpec::mlp(2, &[4], 2);
        let cfg = FlConfig::quick(spec.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let model = spec.build(&mut rng);
        let global = model.params();
        let scratch = ClientScratch::for_model(&model);
        (cfg, global, scratch)
    }

    #[test]
    fn first_round_matches_fedavg_bitwise() {
        let (cfg, global, mut scratch) = setup();
        let data = toy_data(0.0);
        let mut s = Scaffold::new();
        s.init(2, global.len());
        let mut rng = StdRng::seed_from_u64(1);
        let out = s.local_train(0, &global, &data, &cfg, &mut scratch, &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let plain =
            NoPersonalization::new().local_train(0, &global, &data, &cfg, &mut scratch, &mut rng);
        assert_eq!(out.delta, plain.delta, "zero variates = plain local SGD");
        assert!(out.commit.ctrl.is_some());
    }

    #[test]
    fn variates_mean_tracks_server_control() {
        let (cfg, global, mut scratch) = setup();
        let mut s = Scaffold::new();
        s.init(2, global.len());
        let mut rng = StdRng::seed_from_u64(2);
        for round in 0..4 {
            for cid in 0..2 {
                let data = toy_data(cid as f32 * 0.3);
                let out = s.local_train(cid, &global, &data, &cfg, &mut scratch, &mut rng);
                s.commit(cid, out.commit);
                let _ = round;
            }
        }
        // Invariant c = (1/N)·Σ c_i, up to f32 accumulation noise.
        for k in 0..global.len() {
            let mean = (0..2)
                .map(|cid| s.client_control(cid).map_or(0.0, |v| v[k]))
                .sum::<f32>()
                / 2.0;
            assert!(
                (mean - s.server_control()[k]).abs() < 1e-4,
                "k={k}: mean {mean} vs c {}",
                s.server_control()[k]
            );
        }
    }

    #[test]
    fn second_round_correction_changes_the_delta() {
        let (cfg, global, mut scratch) = setup();
        let data = toy_data(0.25);
        let mut s = Scaffold::new();
        s.init(2, global.len());
        let mut rng = StdRng::seed_from_u64(3);
        let out = s.local_train(0, &global, &data, &cfg, &mut scratch, &mut rng);
        s.commit(0, out.commit);
        // Client 1 now trains against a non-zero c (client 0's variate).
        let mut rng = StdRng::seed_from_u64(4);
        let corrected = s.local_train(1, &global, &data, &cfg, &mut scratch, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let plain =
            NoPersonalization::new().local_train(1, &global, &data, &cfg, &mut scratch, &mut rng);
        assert_ne!(corrected.delta, plain.delta, "correction must act");
    }

    #[test]
    fn state_survives_export_import() {
        let (cfg, global, mut scratch) = setup();
        let mut s = Scaffold::new();
        s.init(3, global.len());
        let mut rng = StdRng::seed_from_u64(5);
        let out = s.local_train(1, &global, &toy_data(0.1), &cfg, &mut scratch, &mut rng);
        s.commit(1, out.commit);
        let state = s.export_state();
        assert_eq!(state.len(), 4, "server slot + 3 client slots");
        let mut restored = Scaffold::new();
        restored.init(3, global.len());
        restored.import_state(state);
        assert_eq!(restored.server_control(), s.server_control());
        assert_eq!(restored.client_control(1), s.client_control(1));
        assert!(restored.client_control(0).is_none());
    }

    #[test]
    fn uncommitted_training_leaves_state_untouched() {
        let (cfg, global, mut scratch) = setup();
        let mut s = Scaffold::new();
        s.init(1, global.len());
        let mut rng = StdRng::seed_from_u64(6);
        let _ = s.local_train(0, &global, &toy_data(0.0), &cfg, &mut scratch, &mut rng);
        assert!(s.server_control().iter().all(|&v| v == 0.0));
        assert!(s.client_control(0).is_none());
    }
}
