//! Ditto [Li et al., ICML 2021] — fair and robust FL through
//! personalization.
//!
//! Ditto sends the standard global-model update to the server but keeps a
//! personal model trained with a proximal pull toward the (potentially
//! corrupt) global model; robustness comes from evaluating clients on the
//! personal models. Listed as a "robust aggregation" row of the paper's
//! Table I.

use super::{LocalOutcome, PersonalStore, Personalization, StateCommit};
use crate::client::local_sgd_delta_into;
use crate::config::FlConfig;
use crate::scratch::ClientScratch;
use collapois_data::sample::Dataset;
use rand::rngs::StdRng;

/// Ditto personalization strategy.
#[derive(Debug, Clone)]
pub struct Ditto {
    lambda: f64,
    personal: PersonalStore,
}

impl Ditto {
    /// Creates Ditto with the proximal regularization weight λ (small λ =
    /// more personalization, large λ = personal model glued to the global).
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        Self {
            lambda,
            personal: PersonalStore::default(),
        }
    }
}

impl Personalization for Ditto {
    fn name(&self) -> &'static str {
        "ditto"
    }

    fn init(&mut self, num_clients: usize, _dim: usize) {
        self.personal.init(num_clients);
    }

    fn local_train(
        &self,
        client_id: usize,
        global: &[f32],
        data: &Dataset,
        cfg: &FlConfig,
        scratch: &mut ClientScratch,
        rng: &mut StdRng,
    ) -> LocalOutcome {
        // The update sent to the server: plain local SGD from the global.
        local_sgd_delta_into(rng, scratch, global, data, cfg);
        let delta = std::mem::take(&mut scratch.delta);
        // The personal model: prox-regularized training starting from the
        // previous personal model (or the global on first participation).
        // local_sgd_delta_prox starts from its `global` argument and pulls
        // toward it; for Ditto the pull must be toward the *server* model
        // while starting from the personal model, so run the prox step
        // manually from the personal start with reference `global`.
        match self.personal.get(client_id) {
            Some(p) => scratch.model.load_params_into(p),
            None => scratch.model.load_params_into(global),
        }
        let mut opt = collapois_nn::optim::Sgd::new(cfg.client_lr);
        for _ in 0..cfg.local_steps {
            data.minibatch_into(
                rng,
                cfg.batch_size,
                &mut scratch.idx,
                &mut scratch.x,
                &mut scratch.y,
            );
            scratch
                .model
                .train_batch_ws(&scratch.x, &scratch.y, &mut opt, &mut scratch.ws);
            if self.lambda > 0.0 {
                scratch.model.store_params_into(&mut scratch.params);
                // Clamped at 1: huge λ pins the personal model to the
                // global instead of oscillating.
                let lr_l = (cfg.client_lr * self.lambda).min(1.0) as f32;
                for (p, &g) in scratch.params.iter_mut().zip(global) {
                    *p -= lr_l * (*p - g);
                }
                scratch.model.load_params_into(&scratch.params);
            }
        }
        LocalOutcome {
            delta,
            commit: StateCommit {
                // Owned vector required: this outlives the arena in the
                // personal store.
                personal: Some(scratch.model.params()),
                ..StateCommit::none()
            },
        }
    }

    fn commit(&mut self, client_id: usize, commit: StateCommit) {
        if let Some(personal) = commit.personal {
            self.personal.set(client_id, personal);
        }
    }

    fn eval_params(&self, client_id: usize, global: &[f32]) -> Vec<f32> {
        match self.personal.get(client_id) {
            Some(p) => p.clone(),
            None => global.to_vec(),
        }
    }

    fn export_state(&self) -> Vec<Option<Vec<f32>>> {
        self.personal.export()
    }

    fn import_state(&mut self, state: Vec<Option<Vec<f32>>>) {
        self.personal.import(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_nn::zoo::ModelSpec;
    use collapois_stats::geometry::l2_distance;
    use rand::SeedableRng;

    fn toy_data() -> Dataset {
        let mut ds = Dataset::empty(&[2], 2);
        for i in 0..32 {
            let c = i % 2;
            let v = if c == 0 { 0.0 } else { 1.0 };
            ds.push(&[v, 1.0 - v], c);
        }
        ds
    }

    /// Runs compute + commit the way the round engine does.
    fn train_and_commit(
        d: &mut Ditto,
        cid: usize,
        global: &[f32],
        data: &Dataset,
        cfg: &FlConfig,
        scratch: &mut ClientScratch,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let out = d.local_train(cid, global, data, cfg, scratch, rng);
        d.commit(cid, out.commit);
        out.delta
    }

    #[test]
    fn keeps_separate_personal_model() {
        let spec = ModelSpec::mlp(2, &[4], 2);
        let cfg = FlConfig::quick(spec.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let model = spec.build(&mut rng);
        let global = model.params();
        let mut scratch = ClientScratch::for_model(&model);
        let mut d = Ditto::new(0.1);
        d.init(1, global.len());
        let delta = train_and_commit(
            &mut d,
            0,
            &global,
            &toy_data(),
            &cfg,
            &mut scratch,
            &mut rng,
        );
        assert!(delta.iter().any(|&v| v != 0.0));
        assert_ne!(d.eval_params(0, &global), global);
    }

    #[test]
    fn large_lambda_glues_personal_to_global() {
        let spec = ModelSpec::mlp(2, &[4], 2);
        let cfg = FlConfig::quick(spec.clone());
        let data = toy_data();
        let run = |lambda: f64| {
            let mut rng = StdRng::seed_from_u64(1);
            let model = spec.build(&mut rng);
            let global = model.params();
            let mut scratch = ClientScratch::for_model(&model);
            let mut d = Ditto::new(lambda);
            d.init(1, global.len());
            let mut rng2 = StdRng::seed_from_u64(2);
            let _ = train_and_commit(&mut d, 0, &global, &data, &cfg, &mut scratch, &mut rng2);
            l2_distance(&d.eval_params(0, &global), &global)
        };
        assert!(
            run(100.0) < run(0.0),
            "large lambda must stay closer to global"
        );
    }

    #[test]
    fn state_survives_export_import() {
        let spec = ModelSpec::mlp(2, &[4], 2);
        let cfg = FlConfig::quick(spec.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let model = spec.build(&mut rng);
        let global = model.params();
        let mut scratch = ClientScratch::for_model(&model);
        let mut d = Ditto::new(0.1);
        d.init(2, global.len());
        let _ = train_and_commit(
            &mut d,
            1,
            &global,
            &toy_data(),
            &cfg,
            &mut scratch,
            &mut rng,
        );
        let state = d.export_state();
        let mut restored = Ditto::new(0.1);
        restored.init(2, global.len());
        restored.import_state(state);
        assert_eq!(restored.eval_params(1, &global), d.eval_params(1, &global));
    }

    #[test]
    fn uncommitted_training_leaves_state_untouched() {
        let spec = ModelSpec::mlp(2, &[4], 2);
        let cfg = FlConfig::quick(spec.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let model = spec.build(&mut rng);
        let global = model.params();
        let mut scratch = ClientScratch::for_model(&model);
        let mut d = Ditto::new(0.1);
        d.init(1, global.len());
        let _ = d.local_train(0, &global, &toy_data(), &cfg, &mut scratch, &mut rng);
        // No commit: the strategy must still evaluate on the global model.
        assert_eq!(d.eval_params(0, &global), global);
    }
}
