//! FedDC [Gao et al., CVPR 2022] — local drift decoupling and correction.
//!
//! Each client maintains a drift variable `h_i` capturing the gap between
//! its personalized optimum and the global model. Local training starts
//! from the global model, runs proximal SGD, then updates the drift
//! `h_i ← h_i + (θ_i − θ)` and reports the drift-corrected delta. Clients
//! are evaluated on their personalized model `θ_i` — the property that lets
//! FedDC shrug off poorly-integrated backdoors (DPois) but not CollaPois,
//! whose Trojan region attracts both global and personalized models.
//!
//! This is the simplified drift-decoupled variant documented in DESIGN.md §1
//! (no per-minibatch drift schedule).

use super::{LocalOutcome, PersonalStore, Personalization, StateCommit};
use crate::client::local_sgd_delta_prox_into;
use crate::config::FlConfig;
use crate::scratch::ClientScratch;
use collapois_data::sample::Dataset;
use rand::rngs::StdRng;

/// FedDC personalization strategy.
#[derive(Debug, Clone, Default)]
pub struct FedDc {
    prox_mu: f64,
    drift_decay: f64,
    drift: Vec<Option<Vec<f32>>>,
    personal: PersonalStore,
}

impl FedDc {
    /// Creates FedDC with the given proximal weight (drift-control strength).
    ///
    /// # Panics
    ///
    /// Panics if `prox_mu < 0`.
    pub fn new(prox_mu: f64) -> Self {
        assert!(prox_mu >= 0.0, "prox_mu must be non-negative");
        Self {
            prox_mu,
            drift_decay: 0.5,
            drift: Vec::new(),
            personal: PersonalStore::default(),
        }
    }

    /// Drift of client `id` (zero vector if never trained).
    pub fn drift_of(&self, id: usize) -> Option<&Vec<f32>> {
        self.drift.get(id).and_then(Option::as_ref)
    }
}

impl Personalization for FedDc {
    fn name(&self) -> &'static str {
        "feddc"
    }

    fn init(&mut self, num_clients: usize, _dim: usize) {
        self.drift = vec![None; num_clients];
        self.personal.init(num_clients);
    }

    fn local_train(
        &self,
        client_id: usize,
        global: &[f32],
        data: &Dataset,
        cfg: &FlConfig,
        scratch: &mut ClientScratch,
        rng: &mut StdRng,
    ) -> LocalOutcome {
        local_sgd_delta_prox_into(rng, scratch, global, data, cfg, self.prox_mu);
        let delta = std::mem::take(&mut scratch.delta);
        // Drift correction: h_i ← decay·h_i + (θ_i − θ).
        let decay = self.drift_decay as f32;
        let new_drift: Vec<f32> = match self.drift.get(client_id).and_then(Option::as_ref) {
            Some(h) => h
                .iter()
                .zip(&delta)
                .map(|(hv, dv)| decay * hv + dv)
                .collect(),
            None => delta.clone(),
        };
        // Personalized model: global + local delta + accumulated drift.
        let personal: Vec<f32> = global
            .iter()
            .zip(&delta)
            .zip(&new_drift)
            .map(|((g, d), h)| g + d + decay * h)
            .collect();
        LocalOutcome {
            delta,
            commit: StateCommit {
                personal: Some(personal),
                drift: Some(new_drift),
                ..StateCommit::none()
            },
        }
    }

    fn commit(&mut self, client_id: usize, commit: StateCommit) {
        if let Some(drift) = commit.drift {
            if client_id < self.drift.len() {
                self.drift[client_id] = Some(drift);
            }
        }
        if let Some(personal) = commit.personal {
            self.personal.set(client_id, personal);
        }
    }

    fn eval_params(&self, client_id: usize, global: &[f32]) -> Vec<f32> {
        match self.personal.get(client_id) {
            Some(p) => p.clone(),
            None => global.to_vec(),
        }
    }

    /// Layout: `n` drift entries followed by `n` personal-model entries.
    fn export_state(&self) -> Vec<Option<Vec<f32>>> {
        let mut state = self.drift.clone();
        state.extend(self.personal.export());
        state
    }

    fn import_state(&mut self, state: Vec<Option<Vec<f32>>>) {
        let n = self.drift.len();
        debug_assert_eq!(state.len(), 2 * n, "FedDc state layout mismatch");
        let mut it = state.into_iter();
        self.drift = it.by_ref().take(n).collect();
        self.personal.import(it.collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_nn::zoo::ModelSpec;
    use rand::SeedableRng;

    fn toy_data() -> Dataset {
        let mut ds = Dataset::empty(&[2], 2);
        for i in 0..32 {
            let c = i % 2;
            let v = if c == 0 { 0.0 } else { 1.0 };
            ds.push(&[v, 1.0 - v], c);
        }
        ds
    }

    fn train_and_commit(
        fd: &mut FedDc,
        cid: usize,
        global: &[f32],
        data: &Dataset,
        cfg: &FlConfig,
        scratch: &mut ClientScratch,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let out = fd.local_train(cid, global, data, cfg, scratch, rng);
        fd.commit(cid, out.commit);
        out.delta
    }

    #[test]
    fn accumulates_drift_and_personal_model() {
        let spec = ModelSpec::mlp(2, &[4], 2);
        let cfg = FlConfig::quick(spec.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let model = spec.build(&mut rng);
        let global = model.params();
        let mut scratch = ClientScratch::for_model(&model);
        let mut fd = FedDc::new(1.0);
        fd.init(2, global.len());
        assert!(fd.drift_of(0).is_none());
        let _ = train_and_commit(
            &mut fd,
            0,
            &global,
            &toy_data(),
            &cfg,
            &mut scratch,
            &mut rng,
        );
        assert!(fd.drift_of(0).is_some());
        // Personalized model differs from the global.
        assert_ne!(fd.eval_params(0, &global), global);
        // Untrained client evaluates on the global model.
        assert_eq!(fd.eval_params(1, &global), global);
    }

    #[test]
    fn drift_evolves_across_rounds() {
        let spec = ModelSpec::mlp(2, &[4], 2);
        let cfg = FlConfig::quick(spec.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let model = spec.build(&mut rng);
        let global = model.params();
        let mut scratch = ClientScratch::for_model(&model);
        let mut fd = FedDc::new(1.0);
        fd.init(1, global.len());
        let _ = train_and_commit(
            &mut fd,
            0,
            &global,
            &toy_data(),
            &cfg,
            &mut scratch,
            &mut rng,
        );
        let d1 = fd.drift_of(0).unwrap().clone();
        let _ = train_and_commit(
            &mut fd,
            0,
            &global,
            &toy_data(),
            &cfg,
            &mut scratch,
            &mut rng,
        );
        let d2 = fd.drift_of(0).unwrap().clone();
        assert_ne!(d1, d2);
    }

    #[test]
    fn state_survives_export_import() {
        let spec = ModelSpec::mlp(2, &[4], 2);
        let cfg = FlConfig::quick(spec.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let model = spec.build(&mut rng);
        let global = model.params();
        let mut scratch = ClientScratch::for_model(&model);
        let mut fd = FedDc::new(1.0);
        fd.init(3, global.len());
        let _ = train_and_commit(
            &mut fd,
            2,
            &global,
            &toy_data(),
            &cfg,
            &mut scratch,
            &mut rng,
        );
        let state = fd.export_state();
        assert_eq!(state.len(), 6); // 3 drift + 3 personal slots
        let mut restored = FedDc::new(1.0);
        restored.init(3, global.len());
        restored.import_state(state);
        assert_eq!(restored.drift_of(2), fd.drift_of(2));
        assert_eq!(restored.eval_params(2, &global), fd.eval_params(2, &global));
    }
}
