//! Personalized federated-learning strategies.
//!
//! The paper evaluates CollaPois against plain FedAvg and two personalized
//! algorithms — FedDC [Gao et al., CVPR 2022] and MetaFed [Chen et al.,
//! TNNLS 2023] — plus the personalization-based Ditto defense [Li et al.,
//! ICML 2021]. A [`Personalization`] strategy controls (a) how a sampled
//! client trains locally and what update it sends, and (b) which parameters
//! a client's metrics are evaluated on (`θ_i`, the personalized model).
//!
//! ## Compute/commit split
//!
//! Local training is split into a **pure compute** phase and an **ordered
//! commit** phase so the round engine can fan clients over worker threads
//! without losing determinism:
//!
//! 1. [`Personalization::begin_round`] runs once, sequentially, before any
//!    client trains (shared-state setup such as cluster anchoring).
//! 2. [`Personalization::local_train`] takes `&self`: it reads a snapshot
//!    of strategy state and returns the update **plus** a [`StateCommit`]
//!    describing every mutation it wants.
//! 3. [`Personalization::commit`] applies the commits sequentially in
//!    sampled-client order, regardless of which worker finished first.
//!
//! Under this contract `workers = N` is bit-identical to `workers = 1` by
//! construction: no client can observe another client's same-round writes,
//! and writes land in a schedule-independent order.

mod clustered;
mod ditto;
mod feddc;
mod metafed;
mod scaffold;

pub use clustered::Clustered;
pub use ditto::Ditto;
pub use feddc::FedDc;
pub use metafed::MetaFed;
pub use scaffold::Scaffold;

use crate::client::local_sgd_delta_into;
use crate::config::FlConfig;
use crate::scratch::ClientScratch;
use collapois_data::sample::Dataset;
use rand::rngs::StdRng;

/// State mutations requested by one client's local training, applied by
/// [`Personalization::commit`] in sampled order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateCommit {
    /// New personal model for the client.
    pub personal: Option<Vec<f32>>,
    /// New drift variable for the client (FedDC).
    pub drift: Option<Vec<f32>>,
    /// Cluster selection + trained cluster parameters (clustered FL).
    pub cluster: Option<(usize, Vec<f32>)>,
    /// New client control variate `c_i⁺` (SCAFFOLD).
    pub ctrl: Option<Vec<f32>>,
}

impl StateCommit {
    /// A commit that changes nothing.
    pub fn none() -> Self {
        Self::default()
    }
}

/// What one client's local training produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalOutcome {
    /// Flat delta `θ_local − θ_global` sent to the server.
    pub delta: Vec<f32>,
    /// State mutations to apply at commit time.
    pub commit: StateCommit,
}

impl LocalOutcome {
    /// An outcome carrying only a delta (stateless strategies).
    pub fn stateless(delta: Vec<f32>) -> Self {
        Self {
            delta,
            commit: StateCommit::none(),
        }
    }
}

/// A client-side training/evaluation strategy.
pub trait Personalization: std::fmt::Debug + Send + Sync {
    /// Short name for report tables.
    fn name(&self) -> &'static str;

    /// Called once before training with the client count and parameter
    /// dimension (for per-client state allocation).
    fn init(&mut self, num_clients: usize, dim: usize);

    /// Round hook: runs once, sequentially, before any client of the round
    /// trains. Shared-state maintenance (e.g. cluster initialization and
    /// anchoring) belongs here, not in [`Personalization::local_train`].
    fn begin_round(&mut self, _global: &[f32], _rng: &mut StdRng) {}

    /// Local training for a sampled benign client.
    ///
    /// Must not mutate strategy state (`&self`): it reads the state
    /// snapshot as of [`Personalization::begin_round`] and reports every
    /// intended mutation through the returned [`StateCommit`].
    ///
    /// `scratch` is a persistent per-worker arena
    /// ([`crate::scratch::ClientScratch`]); implementations train on
    /// `scratch.model` (reloading it from `global` or their personal state —
    /// never relying on its previous contents) and conventionally build the
    /// outgoing delta in `scratch.delta`, handing it off via `mem::take` so
    /// the buffer is reclaimed by the round engine.
    fn local_train(
        &self,
        client_id: usize,
        global: &[f32],
        data: &Dataset,
        cfg: &FlConfig,
        scratch: &mut ClientScratch,
        rng: &mut StdRng,
    ) -> LocalOutcome;

    /// Applies a client's state mutations. Called by the round engine in
    /// sampled-client order after all of the round's training finished.
    fn commit(&mut self, _client_id: usize, _commit: StateCommit) {}

    /// Parameters of the model used to evaluate client `client_id`'s
    /// metrics (the personalized model `θ_i`; the global model when the
    /// strategy keeps no per-client state or the client never participated).
    fn eval_params(&self, client_id: usize, global: &[f32]) -> Vec<f32>;

    /// Serializes the strategy's mutable state for checkpointing. The
    /// layout is strategy-internal; the only contract is that
    /// [`Personalization::import_state`] on an identically-configured
    /// strategy restores it exactly.
    fn export_state(&self) -> Vec<Option<Vec<f32>>> {
        Vec::new()
    }

    /// Restores state captured by [`Personalization::export_state`].
    fn import_state(&mut self, _state: Vec<Option<Vec<f32>>>) {}
}

/// Plain FedAvg: no personalization — clients train from the global model
/// and are evaluated on it.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPersonalization;

impl NoPersonalization {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self
    }
}

impl Personalization for NoPersonalization {
    fn name(&self) -> &'static str {
        "fedavg"
    }

    fn init(&mut self, _num_clients: usize, _dim: usize) {}

    fn local_train(
        &self,
        _client_id: usize,
        global: &[f32],
        data: &Dataset,
        cfg: &FlConfig,
        scratch: &mut ClientScratch,
        rng: &mut StdRng,
    ) -> LocalOutcome {
        local_sgd_delta_into(rng, scratch, global, data, cfg);
        LocalOutcome::stateless(std::mem::take(&mut scratch.delta))
    }

    fn eval_params(&self, _client_id: usize, global: &[f32]) -> Vec<f32> {
        global.to_vec()
    }
}

/// Per-client personal-model store shared by the personalized strategies.
#[derive(Debug, Clone, Default)]
pub(crate) struct PersonalStore {
    models: Vec<Option<Vec<f32>>>,
}

impl PersonalStore {
    pub(crate) fn init(&mut self, num_clients: usize) {
        self.models = vec![None; num_clients];
    }

    pub(crate) fn get(&self, id: usize) -> Option<&Vec<f32>> {
        self.models.get(id).and_then(Option::as_ref)
    }

    pub(crate) fn set(&mut self, id: usize, params: Vec<f32>) {
        if id < self.models.len() {
            self.models[id] = Some(params);
        }
    }

    /// Snapshot of every slot (for checkpoint export).
    pub(crate) fn export(&self) -> Vec<Option<Vec<f32>>> {
        self.models.clone()
    }

    /// Restores a snapshot taken by [`PersonalStore::export`].
    pub(crate) fn import(&mut self, models: Vec<Option<Vec<f32>>>) {
        self.models = models;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_nn::zoo::ModelSpec;
    use rand::SeedableRng;

    pub(crate) fn toy_data() -> Dataset {
        let mut ds = Dataset::empty(&[2], 2);
        for i in 0..32 {
            let c = i % 2;
            let v = if c == 0 { 0.0 } else { 1.0 };
            ds.push(&[v, 1.0 - v], c);
        }
        ds
    }

    #[test]
    fn no_personalization_evaluates_global() {
        let p = NoPersonalization::new();
        let global = vec![1.0f32, 2.0];
        assert_eq!(p.eval_params(0, &global), global);
    }

    #[test]
    fn no_personalization_trains_from_global() {
        let spec = ModelSpec::mlp(2, &[4], 2);
        let cfg = FlConfig::quick(spec.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let model = spec.build(&mut rng);
        let global = model.params();
        let mut scratch = ClientScratch::for_model(&model);
        let mut p = NoPersonalization::new();
        p.init(1, global.len());
        let out = p.local_train(0, &global, &toy_data(), &cfg, &mut scratch, &mut rng);
        assert_eq!(out.delta.len(), global.len());
        assert!(out.delta.iter().any(|&d| d != 0.0));
        assert_eq!(out.commit, StateCommit::none());
        assert!(p.export_state().is_empty());
    }

    #[test]
    fn personal_store_roundtrip() {
        let mut s = PersonalStore::default();
        s.init(3);
        assert!(s.get(1).is_none());
        s.set(1, vec![1.0]);
        assert_eq!(s.get(1), Some(&vec![1.0]));
        s.set(99, vec![2.0]); // out of range: ignored
        assert!(s.get(99).is_none());
        let snapshot = s.export();
        let mut t = PersonalStore::default();
        t.import(snapshot);
        assert_eq!(t.get(1), Some(&vec![1.0]));
    }
}
