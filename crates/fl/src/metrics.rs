//! Client-level and population-level metrics (§V of the paper).
//!
//! * **Benign AC** — accuracy of client `i`'s personalized model on its
//!   clean test split.
//! * **Attack SR** — fraction of client `i`'s trigger-stamped test samples
//!   predicted as the target class `y^Troj`.
//! * **Eq. 8 score** — `Benign AC + Attack SR`, used to rank the top-k%
//!   most-affected clients.
//! * **Clusters** — the paper's 1 %-, 25 %-, 50 %- and bottom-50 %-clusters
//!   (each excluding the preceding ones) with their Eq. 9 cumulative-label
//!   cosine to the attacker's auxiliary data.

use collapois_data::federated::FederatedDataset;
use collapois_data::labels::cumulative_label_cosine;
use collapois_data::poison::BackdoorEval;
use collapois_data::sample::Dataset;
use collapois_nn::model::Sequential;
use collapois_nn::zoo::ModelSpec;
use collapois_runtime::pool::{WorkerArenas, WorkerPool};

/// Per-client evaluation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientMetrics {
    /// Client id.
    pub client_id: usize,
    /// Accuracy on the clean test split.
    pub benign_ac: f64,
    /// Backdoor success rate on the trigger-stamped test split.
    pub attack_sr: f64,
}

impl ClientMetrics {
    /// The paper's Eq. 8 infection score.
    pub fn score(&self) -> f64 {
        self.benign_ac + self.attack_sr
    }
}

/// Population-level averages over a set of clients.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PopulationMetrics {
    /// Mean Benign AC.
    pub benign_ac: f64,
    /// Mean Attack SR.
    pub attack_sr: f64,
    /// Number of clients averaged.
    pub clients: usize,
}

/// Averages a set of client metrics.
pub fn population(metrics: &[ClientMetrics]) -> PopulationMetrics {
    if metrics.is_empty() {
        return PopulationMetrics::default();
    }
    let n = metrics.len() as f64;
    PopulationMetrics {
        benign_ac: metrics.iter().map(|m| m.benign_ac).sum::<f64>() / n,
        attack_sr: metrics.iter().map(|m| m.attack_sr).sum::<f64>() / n,
        clients: metrics.len(),
    }
}

/// Evaluates every benign client: Benign AC on its clean test split and
/// Attack SR on the backdoored eval set the [`BackdoorEval`] derives from it
/// (trigger-stamped copy for trigger attacks, the clean in-region samples
/// for semantic attacks), using the parameters produced by
/// `eval_params(client_id)` (the personalized model). Clients in
/// `excluded` (the compromised set) are skipped.
///
/// Convenience wrapper around [`evaluate_clients_pooled`] that builds a
/// machine-sized pool and throwaway scratch models per call; round loops
/// should use the pooled entry point with persistent arenas instead.
pub fn evaluate_clients<F>(
    fed: &FederatedDataset,
    model_spec: &ModelSpec,
    eval_params: F,
    backdoor: &dyn BackdoorEval,
    target_class: usize,
    excluded: &[usize],
) -> Vec<ClientMetrics>
where
    F: Fn(usize) -> Vec<f32> + Sync,
{
    let pool = WorkerPool::auto();
    let mut arenas = WorkerArenas::new();
    evaluate_clients_pooled(
        fed,
        model_spec,
        eval_params,
        backdoor,
        target_class,
        excluded,
        &pool,
        &mut arenas,
    )
}

/// [`evaluate_clients`] over a caller-owned [`WorkerPool`] with lane-pinned
/// scratch models that persist across calls (so a round loop's periodic
/// evaluation reuses the same buffers every pass instead of respawning
/// threads and rebuilding models). Results are in ascending client order at
/// any worker count — each client's metrics are a pure function of its id.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_clients_pooled<F>(
    fed: &FederatedDataset,
    model_spec: &ModelSpec,
    eval_params: F,
    backdoor: &dyn BackdoorEval,
    target_class: usize,
    excluded: &[usize],
    pool: &WorkerPool,
    arenas: &mut WorkerArenas<Sequential>,
) -> Vec<ClientMetrics>
where
    F: Fn(usize) -> Vec<f32> + Sync,
{
    let ids: Vec<usize> = (0..fed.num_clients())
        .filter(|id| !excluded.contains(id))
        .collect();
    pool.map_with_arena(
        arenas,
        ids,
        || {
            // Lane scratch model (seed irrelevant: params are always
            // overwritten before use).
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(0);
            model_spec.build(&mut rng)
        },
        |_, id, model| {
            let params = eval_params(id);
            model.set_params(&params);
            let test = &fed.client(id).test;
            let benign_ac = if test.is_empty() {
                0.0
            } else {
                let (x, y) = test.as_batch();
                model.evaluate(&x, &y)
            };
            // An empty eval set (no test data, or no test sample inside a
            // semantic region) reads as SR 0: nothing to attack.
            let backdoored = backdoor.eval_set(test);
            let attack_sr = if backdoored.is_empty() {
                0.0
            } else {
                let (x, _) = backdoored.as_batch();
                let preds = model.predict(&x);
                preds.iter().filter(|&&p| p == target_class).count() as f64 / preds.len() as f64
            };
            ClientMetrics {
                client_id: id,
                benign_ac,
                attack_sr,
            }
        },
    )
}

/// The top `k` percent of clients by Eq. 8 score, descending.
/// `k` in `(0, 100]`; at least one client is returned.
///
/// # Panics
///
/// Panics if `k` is outside `(0, 100]`.
pub fn top_k_percent(metrics: &[ClientMetrics], k: f64) -> Vec<ClientMetrics> {
    assert!(k > 0.0 && k <= 100.0, "k must be in (0, 100]");
    let mut sorted = metrics.to_vec();
    sorted.sort_by(|a, b| b.score().partial_cmp(&a.score()).expect("finite scores"));
    let n = ((metrics.len() as f64) * k / 100.0).round().max(1.0) as usize;
    sorted.truncate(n.min(sorted.len()));
    sorted
}

/// One row of the paper's Fig. 12 cluster analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Cluster label ("1%", "25%", "50%", "bottom-50%").
    pub label: String,
    /// Clients in the cluster.
    pub clients: Vec<usize>,
    /// Mean Eq. 9 cumulative-label cosine to the auxiliary data.
    pub label_cosine: f64,
    /// Mean Attack SR of the cluster.
    pub attack_sr: f64,
    /// Mean Benign AC of the cluster.
    pub benign_ac: f64,
}

/// Splits clients into the paper's exclusive risk clusters (1 %, 25 %, 50 %,
/// bottom-50 % — each excludes all preceding clusters) and computes each
/// cluster's `CS_k` against the auxiliary dataset `aux` (Eq. 9).
pub fn cluster_analysis(
    fed: &FederatedDataset,
    metrics: &[ClientMetrics],
    aux: &Dataset,
) -> Vec<ClusterReport> {
    let mut sorted = metrics.to_vec();
    sorted.sort_by(|a, b| b.score().partial_cmp(&a.score()).expect("finite scores"));
    let n = sorted.len();
    let cut = |p: f64| -> usize { ((n as f64) * p / 100.0).round().max(1.0) as usize };
    let bounds = [
        ("1%", 0, cut(1.0)),
        ("25%", cut(1.0), cut(25.0)),
        ("50%", cut(25.0), cut(50.0)),
        ("bottom-50%", cut(50.0), n),
    ];
    bounds
        .iter()
        .filter(|(_, lo, hi)| hi > lo)
        .map(|&(label, lo, hi)| {
            let members = &sorted[lo..hi.min(n)];
            let clients: Vec<usize> = members.iter().map(|m| m.client_id).collect();
            let mut cos_sum = 0.0;
            for m in members {
                let local = fed.client(m.client_id).all();
                cos_sum += cumulative_label_cosine(&local, aux);
            }
            let len = members.len() as f64;
            ClusterReport {
                label: label.to_string(),
                label_cosine: cos_sum / len,
                attack_sr: members.iter().map(|m| m.attack_sr).sum::<f64>() / len,
                benign_ac: members.iter().map(|m| m.benign_ac).sum::<f64>() / len,
                clients,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_data::synthetic::{SyntheticImage, SyntheticImageConfig};
    use collapois_data::trigger::PatchTrigger;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fed() -> FederatedDataset {
        let cfg = SyntheticImageConfig {
            samples: 400,
            side: 8,
            classes: 4,
            ..Default::default()
        };
        let ds = SyntheticImage::new(cfg).generate();
        let mut rng = StdRng::seed_from_u64(0);
        FederatedDataset::build(&mut rng, &ds, 8, 1.0)
    }

    fn fake_metrics() -> Vec<ClientMetrics> {
        (0..8)
            .map(|i| ClientMetrics {
                client_id: i,
                benign_ac: 0.5,
                attack_sr: i as f64 / 10.0,
            })
            .collect()
    }

    #[test]
    fn population_averages() {
        let p = population(&fake_metrics());
        assert_eq!(p.clients, 8);
        assert!((p.benign_ac - 0.5).abs() < 1e-12);
        assert!((p.attack_sr - 0.35).abs() < 1e-12);
        assert_eq!(population(&[]).clients, 0);
    }

    #[test]
    fn top_k_selects_highest_scores() {
        let top = top_k_percent(&fake_metrics(), 25.0);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].client_id, 7);
        assert_eq!(top[1].client_id, 6);
        // Always at least one client.
        let one = top_k_percent(&fake_metrics(), 1.0);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn clusters_are_exclusive_and_cover() {
        let f = fed();
        let aux = f.auxiliary(&[0]);
        let reports = cluster_analysis(&f, &fake_metrics(), &aux);
        let all: Vec<usize> = reports.iter().flat_map(|r| r.clients.clone()).collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "clusters must be disjoint");
        assert_eq!(all.len(), 8, "clusters must cover all clients");
        for r in &reports {
            assert!(
                (0.0..=1.0).contains(&r.label_cosine),
                "{}: {}",
                r.label,
                r.label_cosine
            );
        }
    }

    #[test]
    fn pooled_evaluation_is_worker_count_invariant() {
        let f = fed();
        let spec = ModelSpec::mlp(64, &[16], 4);
        let mut rng = StdRng::seed_from_u64(1);
        let params = spec.build(&mut rng).params();
        let trigger = PatchTrigger::badnets(8);
        let serial = {
            let pool = WorkerPool::new(1);
            let mut arenas = WorkerArenas::new();
            evaluate_clients_pooled(
                &f,
                &spec,
                |_| params.clone(),
                &trigger,
                0,
                &[],
                &pool,
                &mut arenas,
            )
        };
        for workers in [2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let mut arenas = WorkerArenas::new();
            // Two passes through the same arenas: results must not depend
            // on reuse.
            for pass in 0..2 {
                let pooled = evaluate_clients_pooled(
                    &f,
                    &spec,
                    |_| params.clone(),
                    &trigger,
                    0,
                    &[],
                    &pool,
                    &mut arenas,
                );
                assert_eq!(pooled, serial, "workers={workers} pass={pass}");
            }
        }
    }

    #[test]
    fn evaluate_clients_produces_sane_ranges() {
        let f = fed();
        let spec = ModelSpec::mlp(64, &[16], 4);
        let mut rng = StdRng::seed_from_u64(1);
        let params = spec.build(&mut rng).params();
        let trigger = PatchTrigger::badnets(8);
        let ms = evaluate_clients(&f, &spec, |_| params.clone(), &trigger, 0, &[0]);
        assert_eq!(ms.len(), 7); // client 0 excluded
        assert!(ms.iter().all(|m| m.client_id != 0));
        for m in &ms {
            assert!((0.0..=1.0).contains(&m.benign_ac));
            assert!((0.0..=1.0).contains(&m.attack_sr));
        }
    }
}
