//! Buffered-async (FedBuff) execution support for the discrete-event
//! simulator.
//!
//! Two pieces live here:
//!
//! * [`VersionStore`] — a refcounted store of global-model snapshots keyed
//!   by version. An arriving client fetches the *current* version; by the
//!   time its update lands, later flushes may have advanced the model, so
//!   training must run against the exact parameters the client saw.
//!   Snapshots are shared across all clients that fetched the same version
//!   and recycled as soon as the last reference drops, so resident memory
//!   is `O(live versions × dim)` — bounded by the sim's concurrency cap,
//!   never by the client population.
//! * [`SyntheticSim`] — a dataset-free [`SimHandler`] for scale tests and
//!   benches: each completion contributes a pseudo-update drawn from its
//!   own `Domain::ClientTrain` stream (keyed by arrival index, exactly
//!   like real sim training), merged through the FedBuff staleness-
//!   weighted reduction tree. It exercises every determinism-relevant
//!   moving part — event schedule, version store, weighted merge, worker
//!   fan-out — at 100k+ virtual clients without a resident per-client
//!   dataset.
//!
//! The full-fidelity path (real local training, personalization,
//! adversaries) is [`crate::server::FlServer::run_sim`], which builds on
//! the same two pieces.

use crate::aggregate::FedBuff;
use crate::update::ClientUpdate;
use collapois_runtime::pool::WorkerPool;
use collapois_runtime::seed;
use collapois_runtime::sim::{Completion, SimHandler, Ticks};
use collapois_runtime::trace::{TraceEvent, TraceLog};
use rand::Rng;

/// One retained snapshot.
#[derive(Debug)]
struct Slot {
    version: u64,
    refs: usize,
    params: Vec<f32>,
}

/// Refcounted global-model snapshots keyed by version, with buffer
/// recycling. Lookup is a linear scan: the number of live versions is
/// bounded by the flush cadence of in-flight training (a handful), not by
/// the client count.
#[derive(Debug, Default)]
pub struct VersionStore {
    slots: Vec<Slot>,
    pool: Vec<Vec<f32>>,
    peak_live: usize,
}

impl VersionStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a reference to `version`, snapshotting `current` on first
    /// retain. `current` must be the global parameters *at* `version` —
    /// i.e. call this at fetch time, before any further flush.
    pub fn retain(&mut self, version: u64, current: &[f32]) {
        if let Some(slot) = self.slots.iter_mut().find(|s| s.version == version) {
            slot.refs += 1;
            return;
        }
        let mut params = self.pool.pop().unwrap_or_default();
        params.clear();
        params.extend_from_slice(current);
        self.slots.push(Slot {
            version,
            refs: 1,
            params,
        });
        self.peak_live = self.peak_live.max(self.slots.len());
    }

    /// The snapshot for `version`.
    ///
    /// # Panics
    ///
    /// Panics if `version` was never retained (or already fully released).
    pub fn get(&self, version: u64) -> &[f32] {
        &self
            .slots
            .iter()
            .find(|s| s.version == version)
            .unwrap_or_else(|| panic!("version {version} not retained"))
            .params
    }

    /// Drops one reference to `version`, recycling the snapshot buffer
    /// when the last reference goes.
    ///
    /// # Panics
    ///
    /// Panics if `version` has no live references.
    pub fn release(&mut self, version: u64) {
        let i = self
            .slots
            .iter()
            .position(|s| s.version == version)
            .unwrap_or_else(|| panic!("release of unretained version {version}"));
        self.slots[i].refs -= 1;
        if self.slots[i].refs == 0 {
            let slot = self.slots.swap_remove(i);
            self.pool.push(slot.params);
        }
    }

    /// Currently retained version count.
    pub fn live(&self) -> usize {
        self.slots.len()
    }

    /// High-water mark of simultaneously retained versions (the memory
    /// bound a scale run asserts against).
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }
}

/// Dataset-free buffered-async executor for scale runs (see module docs).
#[derive(Debug)]
pub struct SyntheticSim {
    run_seed: u64,
    params: Vec<f32>,
    versions: VersionStore,
    fedbuff: FedBuff,
    pool: WorkerPool,
    server_lr: f32,
    /// Scale of the random component of each pseudo-update.
    noise_scale: f32,
    /// Pull-toward-origin coefficient keeping params bounded over long runs.
    contraction: f32,
    agg: Vec<f32>,
    updates: Vec<ClientUpdate>,
    staleness: Vec<u64>,
    update_pool: Vec<Vec<f32>>,
    rejected: u64,
}

impl SyntheticSim {
    /// A synthetic executor over a `dim`-parameter model, starting from
    /// zero parameters, merging with staleness exponent `decay` on
    /// `workers` pool lanes.
    pub fn new(dim: usize, run_seed: u64, workers: usize, decay: f64) -> Self {
        Self {
            run_seed,
            params: vec![0.0; dim],
            versions: VersionStore::new(),
            fedbuff: FedBuff::new(decay),
            pool: WorkerPool::new(workers),
            server_lr: 1.0,
            noise_scale: 0.05,
            contraction: 0.01,
            agg: vec![0.0; dim],
            updates: Vec::new(),
            staleness: Vec::new(),
            update_pool: Vec::new(),
            rejected: 0,
        }
    }

    /// Current global parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// The snapshot store (for memory-bound assertions).
    pub fn versions(&self) -> &VersionStore {
        &self.versions
    }

    /// Updates rejected for non-finite values (injected corruption).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

impl SimHandler for SyntheticSim {
    fn on_fetch(&mut self, _client: usize, version: u64) {
        self.versions.retain(version, &self.params);
    }

    fn flush(
        &mut self,
        flush_index: u64,
        _now: Ticks,
        buffer: &[Completion],
        trace: &mut TraceLog,
    ) {
        self.updates.clear();
        self.staleness.clear();
        for c in buffer {
            let mut delta = self.update_pool.pop().unwrap_or_default();
            {
                // The pseudo-update: noise from the client's own
                // `(run, arrival, client)` training stream plus a
                // contraction toward the origin, computed against the
                // *fetched* snapshot — pure in its arguments, so
                // event-loop order and worker count cannot touch it.
                let snapshot = self.versions.get(c.fetched_version);
                let mut rng = seed::client_rng(self.run_seed, c.arrival_index, c.client);
                delta.clear();
                for &p in snapshot {
                    let u: f32 = rng.gen_range(-1.0..1.0);
                    delta.push(self.noise_scale * u - self.contraction * p);
                }
            }
            if c.corrupt {
                if let Some(v) = delta.first_mut() {
                    *v = f32::NAN;
                }
            }
            if delta.iter().all(|v| v.is_finite()) {
                self.updates.push(ClientUpdate::new(c.client, delta, 1));
                self.staleness.push(c.staleness);
            } else {
                self.rejected += 1;
                trace.push(TraceEvent::UpdateRejected {
                    round: flush_index as usize,
                    client: c.client,
                    reason: "injected_corruption".to_string(),
                });
                self.update_pool.push(delta);
            }
        }
        self.fedbuff
            .merge_pooled(&self.updates, &self.staleness, &mut self.agg, &self.pool);
        let lr = self.server_lr;
        for (p, &d) in self.params.iter_mut().zip(&self.agg) {
            *p += lr * d;
        }
        for u in self.updates.drain(..) {
            self.update_pool.push(u.delta);
        }
        // Every buffered completion holds exactly one snapshot reference.
        for c in buffer {
            self.versions.release(c.fetched_version);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collapois_runtime::fault::FaultPlan;
    use collapois_runtime::sim::{ArrivalProcess, SimDriver, SimPlan};

    #[test]
    fn version_store_refcounts_and_recycles() {
        let mut store = VersionStore::new();
        store.retain(0, &[1.0, 2.0]);
        store.retain(0, &[9.0, 9.0]); // second retain must NOT re-snapshot
        store.retain(1, &[3.0, 4.0]);
        assert_eq!(store.get(0), &[1.0, 2.0]);
        assert_eq!(store.get(1), &[3.0, 4.0]);
        assert_eq!(store.live(), 2);
        store.release(0);
        assert_eq!(store.live(), 2, "one reference to v0 remains");
        store.release(0);
        assert_eq!(store.live(), 1);
        store.release(1);
        assert_eq!(store.live(), 0);
        assert_eq!(store.peak_live(), 2);
        // Recycled buffer serves the next snapshot without re-allocating.
        store.retain(7, &[5.0]);
        assert_eq!(store.get(7), &[5.0]);
    }

    #[test]
    #[should_panic(expected = "not retained")]
    fn version_store_rejects_unknown_version() {
        let store = VersionStore::new();
        let _ = store.get(3);
    }

    fn scale_plan(num_clients: usize) -> SimPlan {
        SimPlan {
            num_clients,
            arrival: ArrivalProcess::Poisson { mean_ms: 80.0 },
            train_mean_ms: 30.0,
            buffer_k: 16,
            max_concurrency: 64,
            ..SimPlan::default()
        }
    }

    #[test]
    fn synthetic_run_is_worker_count_invariant() {
        let mut reference: Option<(Vec<u32>, (u64, u64))> = None;
        for workers in [1usize, 2, 4, 8] {
            let mut handler = SyntheticSim::new(128, 42, workers, 0.5);
            let mut trace = TraceLog::hashing();
            let mut driver = SimDriver::new(scale_plan(500), 42, FaultPlan::none()).unwrap();
            let summary = driver.run(&mut handler, &mut trace, 25);
            assert!(summary.reached_target);
            let bits: Vec<u32> = handler.params().iter().map(|v| v.to_bits()).collect();
            let hash = trace.event_hash().unwrap();
            match &reference {
                None => reference = Some((bits, hash)),
                Some((rb, rh)) => {
                    assert_eq!(rb, &bits, "params diverged at workers={workers}");
                    assert_eq!(rh, &hash, "trace diverged at workers={workers}");
                }
            }
        }
    }

    #[test]
    fn snapshot_memory_is_bounded_by_concurrency_not_population() {
        let mut handler = SyntheticSim::new(64, 7, 1, 0.5);
        let mut trace = TraceLog::hashing();
        let plan = scale_plan(5_000);
        let cap = plan.max_concurrency;
        let mut driver = SimDriver::new(plan, 7, FaultPlan::none()).unwrap();
        let summary = driver.run(&mut handler, &mut trace, 40);
        assert!(summary.reached_target);
        assert!(
            handler.versions().peak_live() <= cap,
            "live snapshots ({}) must stay within the concurrency cap ({cap})",
            handler.versions().peak_live()
        );
        // Clients still in flight when the target flush stops the run
        // legitimately hold references, but never more than the cap.
        assert!(handler.versions().live() <= cap, "in-flight refs bounded");
    }

    #[test]
    fn corrupt_completions_are_rejected_and_counted() {
        let fault = FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::default()
        };
        let mut handler = SyntheticSim::new(32, 3, 1, 0.5);
        let mut trace = TraceLog::in_memory();
        let mut driver = SimDriver::new(scale_plan(200), 3, fault).unwrap();
        let summary = driver.run(&mut handler, &mut trace, 5);
        assert!(summary.reached_target);
        assert_eq!(handler.rejected(), summary.completions);
        assert!(
            handler.params().iter().all(|&p| p == 0.0),
            "every update rejected: the model must not move"
        );
        assert!(trace.events().iter().any(|e| e.kind() == "update_rejected"));
    }
}
