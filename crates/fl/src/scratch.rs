//! Per-worker training arena: every heap buffer one worker needs to run a
//! client's local training, owned persistently so the steady-state round
//! loop performs no allocation.
//!
//! A [`ClientScratch`] is *stateless between jobs by contract*: every
//! `local_train` starts by reloading the model from the current global
//! parameters and fully overwrites each buffer it reads, so arena history
//! can never leak between clients, rounds, or worker schedules — which is
//! what keeps the pooled path bitwise identical to the historical
//! clone-per-client path.

use collapois_nn::model::Sequential;
use collapois_nn::tensor::Tensor;
use collapois_nn::workspace::Workspace;

/// Reusable per-worker buffers for
/// [`crate::personalize::Personalization::local_train`].
#[derive(Debug, Clone, Default)]
pub struct ClientScratch {
    /// The reusable model instance. Reloaded from the global parameters at
    /// the start of every job.
    pub model: Sequential,
    /// Lazily created second model instance for strategies that need one
    /// (MetaFed's frozen teacher). Created by cloning `model` on first use.
    pub aux: Option<Sequential>,
    /// Forward/backward scratch tensors for `model` (and `aux`).
    pub ws: Workspace,
    /// Output delta buffer: strategies compute `θ_local − θ_global` here
    /// and hand it off via `mem::take`.
    pub delta: Vec<f32>,
    /// Flat parameter scratch (trained local parameters, prox steps).
    pub params: Vec<f32>,
    /// Second flat parameter scratch for strategies juggling two vectors.
    pub params2: Vec<f32>,
    /// Minibatch index buffer for `Dataset::minibatch_into`.
    pub idx: Vec<usize>,
    /// Minibatch feature buffer.
    pub x: Tensor,
    /// Minibatch label buffer.
    pub y: Vec<usize>,
}

impl ClientScratch {
    /// Creates a scratch arena for the given model architecture (the model
    /// is cloned once here — the last per-client clone in the system).
    pub fn for_model(template: &Sequential) -> Self {
        Self {
            model: template.clone(),
            ..Self::default()
        }
    }

    /// Ensures the auxiliary model exists (cloned from `model` on first
    /// call) without borrowing it, so callers can then split-borrow
    /// `scratch.aux` and `scratch.model` simultaneously.
    pub fn ensure_aux(&mut self) {
        if self.aux.is_none() {
            self.aux = Some(self.model.clone());
        }
    }
}
