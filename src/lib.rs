//! # CollaPois — collaborative backdoor poisoning in non-IID federated learning
//!
//! This facade crate re-exports the full reproduction of the ICDCS 2025
//! paper *"A Client-level Assessment of Collaborative Backdoor Poisoning in
//! Non-IID Federated Learning"*:
//!
//! * [`stats`] — statistical substrate (distributions, hypothesis tests,
//!   vector geometry, Hoeffding bounds).
//! * [`nn`] — neural-network substrate (layers, losses, SGD, flat parameter
//!   vectors).
//! * [`data`] — synthetic federated datasets, Dirichlet(α) non-IID
//!   partitioning, WaNet/patch/DBA/text triggers.
//! * [`defense`] — inference-phase backdoor defenses (STRIP, Neural
//!   Cleanse, Fine-Pruning) the paper's trigger evades.
//! * [`fl`] — federated round protocol, robust aggregation rules,
//!   personalization (FedDC, MetaFed, Ditto), per-client metrics.
//! * [`runtime`] — the deterministic execution engine: derived RNG
//!   streams, worker pools, checkpoint/resume, structured JSONL traces.
//! * [`core`] — the CollaPois attack, baseline attacks (DPois, MRepl, DBA),
//!   Theorems 1–3, stealth analysis and the scenario experiment driver.
//!
//! # Quickstart
//!
//! ```no_run
//! use collapois::core::scenario::{Scenario, ScenarioConfig};
//!
//! let cfg = ScenarioConfig::quick_image(0.5 /* alpha */, 0.01 /* compromised */);
//! let report = Scenario::new(cfg).run();
//! println!("Benign AC = {:.2}%  Attack SR = {:.2}%",
//!          100.0 * report.final_round().benign_accuracy,
//!          100.0 * report.final_round().attack_success_rate);
//! ```
//!
//! See `examples/` for runnable end-to-end programs and `crates/bench` for
//! the per-figure benchmark harness.

pub use collapois_core as core;
pub use collapois_data as data;
pub use collapois_defense as defense;
pub use collapois_fl as fl;
pub use collapois_nn as nn;
pub use collapois_runtime as runtime;
pub use collapois_stats as stats;
