//! Offline vendored stand-in for the
//! [`crossbeam`](https://crates.io/crates/crossbeam) crate, providing the
//! scoped-thread subset this workspace uses, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `crossbeam` to this path dependency (see README "Offline
//! builds"). Only `crossbeam::thread::{scope, Scope, ScopedJoinHandle}` is
//! provided; the semantics match the upstream crate for the patterns used
//! here (spawn + explicit join of every handle inside the scope).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Error payload of a panicked scoped thread.
    pub type ThreadError = Box<dyn Any + Send + 'static>;

    /// A scope handle for spawning threads that may borrow from the caller's
    /// stack. `Copy` so spawned closures can re-spawn (upstream crossbeam
    /// passes `&Scope` into the closure for the same purpose).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owns the result of a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a copy of the scope
        /// (so nested spawning is possible); call sites that do not need it
        /// use `|_| ...`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(scope)),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, ThreadError> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning borrowing threads, joining any
    /// still-running threads before returning.
    ///
    /// Upstream crossbeam returns `Err` with the panic payloads of
    /// unhandled child panics; `std::thread::scope` instead resumes the
    /// panic after joining. For call sites that join every handle
    /// explicitly (as this workspace does) the two behave identically, so
    /// the `Err` variant here only preserves the upstream signature.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ThreadError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn join_surfaces_panics() {
            let caught = super::scope(|s| {
                let h = s.spawn(|_| panic!("boom"));
                h.join()
            })
            .unwrap();
            assert!(caught.is_err());
        }

        #[test]
        fn nested_spawn_through_scope_copy() {
            let n = super::scope(|s| {
                let h = s.spawn(|scope| {
                    let inner = scope.spawn(|_| 21u32);
                    inner.join().unwrap() * 2
                });
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }
    }
}
