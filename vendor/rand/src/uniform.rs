//! Uniform sampling from ranges (the `gen_range` backend).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// `[0, 1)` from 53 random bits.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `[0, 1)` from 24 random bits.
pub(crate) fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// A range that can be sampled uniformly, the receiver of
/// [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` by rejection sampling (Lemire's method
/// without the multiply-shift shortcut: reject the partial final interval).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of `bound` that fits in u64; draws at or above it
    // would bias the low residues, so redraw (expected < 2 draws).
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let draw = uniform_u64_below(rng, span);
                ((self.start as $wide).wrapping_add(draw as $wide)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = uniform_u64_below(rng, span + 1);
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}

impl_int_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

/// Largest representable value strictly below `x` (finite `x` only).
fn next_down_f64(x: f64) -> f64 {
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits - 1)
    } else if bits == 0 {
        // +0.0 -> smallest negative subnormal
        -f64::from_bits(1)
    } else {
        f64::from_bits(bits + 1)
    }
}

/// Largest representable value strictly below `x` (finite `x` only).
fn next_down_f32(x: f32) -> f32 {
    let bits = x.to_bits();
    if x > 0.0 {
        f32::from_bits(bits - 1)
    } else if bits == 0 {
        -f32::from_bits(1)
    } else {
        f32::from_bits(bits + 1)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp to the
        // half-open contract via the previous representable value.
        if v >= self.end {
            next_down_f64(self.end).max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + unit_f32(rng.next_u32()) * (self.end - self.start);
        if v >= self.end {
            next_down_f32(self.end).max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + unit_f32(rng.next_u32()) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-3..7);
            assert!((-3..7).contains(&v));
            let u: usize = rng.gen_range(0..10);
            assert!(u < 10);
            let w: i32 = rng.gen_range(-2..=2);
            assert!((-2..=2).contains(&w));
        }
    }

    #[test]
    fn int_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w: f32 = rng.gen_range(0.5f32..0.500001);
            assert!((0.5..0.500001).contains(&w), "{w}");
            let t: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(t > 0.0 && t < 1.0);
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: i32 = rng.gen_range(3..3);
    }
}
