//! Named generator types.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna).
///
/// Fast, 256 bits of state, passes BigCrush. Not bit-compatible with
/// upstream `rand`'s ChaCha12 `StdRng` — see the crate docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of the xoshiro update;
        // re-expand through SplitMix64 to escape it.
        if s == [0, 0, 0, 0] {
            let mut st = 0x9E37_79B9_7F4A_7C15u64;
            for lane in &mut s {
                *lane = splitmix64(&mut st);
            }
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_escapes_fixed_point() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn streams_differ_across_seeds() {
        let mut outs = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            assert!(outs.insert(rng.next_u64()), "collision at seed {seed}");
        }
    }
}
