//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing the subset of the 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this path dependency (see the workspace `Cargo.toml`
//! and README "Offline builds"). The surface is intentionally small:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range`, `gen_bool` and `fill_bytes`
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded via SplitMix64
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates
//!
//! Streams are deterministic and portable but are **not** bit-compatible
//! with upstream `rand`'s ChaCha12-based `StdRng`; all seeds in this
//! repository were chosen against this implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::SampleRange;

/// A source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        uniform::unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 (the
    /// conventional seeding scheme for xoshiro-family generators).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bits = splitmix64(&mut state);
            let bytes = bits.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
