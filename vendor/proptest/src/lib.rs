//! Offline vendored stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, providing the
//! subset of the API this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * `lo..hi` / `lo..=hi` numeric range strategies,
//! * [`collection::vec`](crate::collection::vec) for `Vec` strategies,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case is
//! reported with its exact inputs (every run is deterministic, so the
//! report is reproducible), but not minimized. Case generation derives its
//! RNG from the test's name and the case index, so adding or reordering
//! tests does not change the inputs any individual test sees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import for property tests.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of upstream's `prelude::prop` (e.g.
    /// `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                // Render inputs before the body runs: the body may move them.
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  ",)+),
                    $(&$arg),+
                );
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}
