//! Test-runner configuration and failure plumbing.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case (carried by `prop_assert!`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-case RNG: derived from the property name and case
/// index so inputs are stable under test addition/reordering.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}
