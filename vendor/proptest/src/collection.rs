//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_length_and_element_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = vec(-1.0f32..1.0, 2..5);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
        let fixed = vec(0usize..3, 6..=6).sample(&mut rng);
        assert_eq!(fixed.len(), 6);
    }
}
