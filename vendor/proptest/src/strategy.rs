//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Strategies are sampled (not shrunk) — see the crate docs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

/// A constant strategy (upstream's `Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let k = (5u64..=5).sample(&mut rng);
            assert_eq!(k, 5);
        }
    }

    #[test]
    fn just_returns_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(Just(42).sample(&mut rng), 42);
    }
}
