//! Offline vendored stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate, providing the
//! subset of the API the workspace's `criterion_micro` bench uses.
//!
//! Statistical machinery is reduced to the essentials: each benchmark is
//! warmed up, then timed over `sample_size` samples whose per-iteration
//! mean / best are printed as an aligned table row. There are no plots, no
//! saved baselines and no outlier analysis — the point is a dependency-free
//! way to compare hot-path costs on this machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API compatibility;
/// the vendored harness always re-runs setup per sample batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup per iteration is acceptable.
    SmallInput,
    /// Large inputs: fewer, larger batches.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup { criterion: self }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, name, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.criterion, name, f);
        self
    }

    /// Ends the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(c.sample_size),
        sample_size: c.sample_size,
        measurement_time: c.measurement_time,
        warm_up_time: c.warm_up_time,
    };
    f(&mut bencher);
    let per_iter: Vec<f64> = bencher.samples;
    if per_iter.is_empty() {
        println!("{name:<28} (no samples)");
        return;
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let best = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<28} mean {:>12}  best {:>12}  ({} samples)",
        fmt_ns(mean),
        fmt_ns(best),
        per_iter.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    /// Per-iteration nanoseconds, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates iterations-per-sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup time is not
    /// measured).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Declares a benchmark group in the style of upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
