//! Scale smoke for the discrete-event simulator (the CI `sim-smoke` job).
//!
//! Two runs of the dataset-free [`SyntheticSim`] executor:
//!
//! * **10,000 virtual clients, 50 virtual rounds (flushes)** — the CI
//!   smoke: completes well under a minute even unoptimized, and its event
//!   sequence hashes to a committed fixture
//!   (`tests/fixtures/golden_sim_scale_events.hash`), so the virtual
//!   schedule at population scale cannot drift silently. The trace runs in
//!   hashing mode: every event is normalized and folded, none retained.
//! * **100,000 virtual clients** — the acceptance-scale run: completes
//!   with memory bounded by the concurrency cap (live model snapshots
//!   `<=` `max_concurrency`, never `O(population)`), since a virtual
//!   client is an event in a priority queue, not a thread or a resident
//!   dataset.
//!
//! Fixture format: `<fnv1a-hash-hex>:<event-count>`. Regenerate by running
//! this test and copying the `actual` value from the failure message.

use collapois::fl::sim::SyntheticSim;
use collapois::runtime::fault::FaultPlan;
use collapois::runtime::sim::{ArrivalProcess, ChurnPlan, SimDriver, SimPlan};
use collapois::runtime::trace::TraceLog;

const SEED: u64 = 990;

fn scale_plan(num_clients: usize, buffer_k: usize, max_concurrency: usize) -> SimPlan {
    SimPlan {
        num_clients,
        arrival: ArrivalProcess::Poisson { mean_ms: 100.0 },
        train_mean_ms: 30.0,
        buffer_k,
        churn: Some(ChurnPlan {
            mean_up_ms: 500.0,
            mean_down_ms: 150.0,
        }),
        max_concurrency,
        ..SimPlan::default()
    }
}

#[test]
fn ten_thousand_client_smoke_matches_committed_event_hash() {
    let fixture_path = format!(
        "{}/tests/fixtures/golden_sim_scale_events.hash",
        env!("CARGO_MANIFEST_DIR")
    );
    let expected = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|_| panic!("fixture missing: {fixture_path}"))
        .trim()
        .to_string();

    let plan = scale_plan(10_000, 32, 128);
    let cap = plan.max_concurrency;
    let mut handler = SyntheticSim::new(64, SEED, 1, 0.5);
    let mut trace = TraceLog::hashing();
    let mut driver = SimDriver::new(plan, SEED, FaultPlan::none()).expect("valid plan");
    let summary = driver.run(&mut handler, &mut trace, 50);

    assert!(
        summary.reached_target,
        "10k-client plan must reach 50 flushes"
    );
    assert_eq!(summary.flushes, 50);
    assert!(handler.versions().peak_live() <= cap);
    assert!(handler.params().iter().all(|v| v.is_finite()));

    let (hash, count) = trace.event_hash().expect("hashing mode");
    let actual = format!("{hash:016x}:{count}");
    assert_eq!(
        actual, expected,
        "10k-client event sequence diverged from the golden fixture \
         (actual {actual}, expected {expected}); see the module docs for \
         when/how to regenerate"
    );
}

#[test]
fn hundred_thousand_clients_complete_with_bounded_memory() {
    let plan = scale_plan(100_000, 64, 256);
    let cap = plan.max_concurrency;
    let mut handler = SyntheticSim::new(64, SEED, 1, 0.5);
    let mut trace = TraceLog::hashing();
    let mut driver = SimDriver::new(plan, SEED, FaultPlan::none()).expect("valid plan");
    let summary = driver.run(&mut handler, &mut trace, 50);

    assert!(
        summary.reached_target,
        "100k-client plan must reach 50 flushes"
    );
    assert!(
        summary.arrivals > 100_000,
        "the whole population cycles through the event queue"
    );
    assert!(
        handler.versions().peak_live() <= cap,
        "live snapshots ({}) exceeded the concurrency cap ({cap})",
        handler.versions().peak_live()
    );
    assert!(handler.params().iter().all(|v| v.is_finite()));
}
