//! Determinism properties of the discrete-event simulation core.
//!
//! Three layers of guarantee, bottom to top:
//!
//! 1. **Event queue total order** (proptest): any multiset of timestamped
//!    events pops in non-decreasing `(time, seq)` order, with the push
//!    sequence number breaking ties — so replaying the same pushes always
//!    yields the same pops, regardless of heap internals.
//! 2. **Schedule invariance**: one seeded buffered-async run produces the
//!    identical event sequence (hash) and bitwise-identical final
//!    parameters at workers 1, 2, 4 and 8, with availability churn and a
//!    fault plan active; virtual time is monotone across the run's trace.
//! 3. **Golden replay**: the final parameters of a fixed seeded run match
//!    a committed fixture (`tests/fixtures/golden_sim_fedbuff.hash`), so
//!    the sim's numerics cannot drift silently across refactors.
//!
//! If a change *intentionally* alters the sim numerics (new weighting,
//! different draw order), regenerate the fixture by running this test and
//! copying the `actual` hash from the failure message into the fixture
//! file, and call the change out in the PR description.

use collapois::fl::sim::SyntheticSim;
use collapois::runtime::fault::FaultPlan;
use collapois::runtime::sim::{ArrivalProcess, ChurnPlan, EventQueue, SimDriver, SimPlan};
use collapois::runtime::trace::{TraceEvent, TraceLog};
use proptest::prelude::*;

/// FNV-1a over the little-endian `f32` bit patterns (the fixture idiom).
fn fnv1a_params(params: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in params {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pops come out sorted by time; among equal times, push order wins.
    #[test]
    fn event_queue_pops_in_total_time_seq_order(times in prop::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut popped = Vec::with_capacity(times.len());
        while let Some(entry) = q.pop() {
            popped.push(entry);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            let ((t0, s0, _), (t1, s1, _)) = (w[0], w[1]);
            prop_assert!(t0 < t1 || (t0 == t1 && s0 < s1),
                "order violated: ({t0},{s0}) before ({t1},{s1})");
        }
        // Ties resolve to push order: the payload is the push index.
        for w in popped.windows(2) {
            let ((t0, _, i0), (t1, _, i1)) = (w[0], w[1]);
            if t0 == t1 {
                prop_assert!(i0 < i1, "tie broken against push order");
            }
        }
    }

    /// The queue is replay-stable: the same pushes produce the same pops.
    #[test]
    fn event_queue_replays_identically(times in prop::collection::vec(0u64..1000, 1..100)) {
        let run = || {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut out = Vec::new();
            while let Some(e) = q.pop() {
                out.push(e);
            }
            out
        };
        prop_assert_eq!(run(), run());
    }
}

/// A churny, faulty buffered-async plan: every composition-relevant path
/// (turn-aways, dropout, corruption, staleness) is on the tested schedule.
fn churny_plan() -> SimPlan {
    SimPlan {
        num_clients: 400,
        arrival: ArrivalProcess::Poisson { mean_ms: 60.0 },
        train_mean_ms: 35.0,
        buffer_k: 16,
        churn: Some(ChurnPlan {
            mean_up_ms: 300.0,
            mean_down_ms: 120.0,
        }),
        max_concurrency: 48,
        ..SimPlan::default()
    }
}

fn churny_fault() -> FaultPlan {
    FaultPlan {
        dropout: 0.05,
        straggler: 0.1,
        straggler_mean_ms: 20.0,
        corrupt: 0.02,
        ..FaultPlan::none()
    }
}

const SIM_SEED: u64 = 77;

/// One full run at `workers`; returns (param hash, event hash).
fn run_once(workers: usize) -> (u64, (u64, u64)) {
    let mut handler = SyntheticSim::new(96, SIM_SEED, workers, 0.5);
    let mut trace = TraceLog::hashing();
    let mut driver = SimDriver::new(churny_plan(), SIM_SEED, churny_fault()).expect("valid plan");
    let summary = driver.run(&mut handler, &mut trace, 20);
    assert!(summary.reached_target, "plan must sustain 20 flushes");
    (
        fnv1a_params(handler.params()),
        trace.event_hash().expect("hashing mode"),
    )
}

#[test]
fn same_seed_same_schedule_at_every_worker_count() {
    let reference = run_once(1);
    for workers in [2usize, 4, 8] {
        assert_eq!(
            run_once(workers),
            reference,
            "sim run diverged at workers={workers}"
        );
    }
}

#[test]
fn virtual_time_is_monotone_across_the_trace() {
    let mut handler = SyntheticSim::new(96, SIM_SEED, 1, 0.5);
    let mut trace = TraceLog::in_memory();
    let mut driver = SimDriver::new(churny_plan(), SIM_SEED, churny_fault()).expect("valid plan");
    driver.run(&mut handler, &mut trace, 20);
    let mut last = 0u64;
    let mut stamped = 0usize;
    for e in trace.events() {
        let vtime = match e {
            TraceEvent::ClientArrived { vtime_us, .. }
            | TraceEvent::ClientUnavailable { vtime_us, .. }
            | TraceEvent::BufferFlushed { vtime_us, .. } => *vtime_us,
            _ => continue,
        };
        assert!(
            vtime >= last,
            "virtual time went backwards: {vtime} after {last}"
        );
        last = vtime;
        stamped += 1;
    }
    assert!(stamped > 100, "expected a substantial stamped event stream");
}

#[test]
fn seeded_sim_replay_matches_committed_fixture() {
    let fixture_path = format!(
        "{}/tests/fixtures/golden_sim_fedbuff.hash",
        env!("CARGO_MANIFEST_DIR")
    );
    let expected = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|_| panic!("fixture missing: {fixture_path}"))
        .trim()
        .to_string();
    let (params, _) = run_once(1);
    let actual = format!("{params:016x}");
    assert_eq!(
        actual, expected,
        "sim final params diverged from the golden fixture (actual {actual}, \
         expected {expected}); see the module docs for when/how to regenerate"
    );
}
