//! Integration and property tests for the `collapois-runtime` execution
//! engine: deterministic parallelism, checkpoint codec robustness, and
//! kill/resume equivalence at scenario level.

use collapois::core::scenario::{
    AttackKind, DefenseKind, FlAlgo, RunOptions, Scenario, ScenarioConfig,
};
use collapois::runtime::checkpoint::Snapshot;
use collapois::runtime::trace::{read_trace, TraceEvent};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("collapois-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn tiny_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::quick_image(1.0, 0.05);
    cfg.num_clients = 10;
    cfg.samples_per_client = 20;
    cfg.rounds = 5;
    cfg.eval_every = 5;
    cfg.sample_rate = 0.5;
    cfg.trojan.epochs = 8;
    cfg
}

/// Normalized trace with scheduling-dependent fields removed: wall-clock
/// times are zeroed and the `RunStarted` event is dropped (its `workers`
/// field legitimately differs between runs being compared).
fn comparable_trace(path: &std::path::Path) -> Vec<TraceEvent> {
    read_trace(path)
        .expect("trace readable")
        .iter()
        .filter(|e| !matches!(e, TraceEvent::RunStarted { .. }))
        .map(TraceEvent::normalized)
        .collect()
}

#[test]
fn worker_count_does_not_change_results() {
    let dir = temp_dir("workers");
    let mut cfg = tiny_cfg();
    cfg.attack = AttackKind::CollaPois;
    cfg.algo = FlAlgo::Ditto; // stateful personalization exercises commits

    let seq_trace = dir.join("seq.jsonl");
    let par_trace = dir.join("par.jsonl");
    let seq = Scenario::new(cfg.clone()).run_with(&RunOptions {
        workers: 1,
        trace_path: Some(seq_trace.clone()),
        ..RunOptions::default()
    });
    let par = Scenario::new(cfg).run_with(&RunOptions {
        workers: 4,
        trace_path: Some(par_trace.clone()),
        ..RunOptions::default()
    });

    assert_eq!(
        seq.final_global, par.final_global,
        "global params must be bit-identical"
    );
    assert_eq!(comparable_trace(&seq_trace), comparable_trace(&par_trace));
    // Per-client metrics derive from personalization state — also identical.
    for (a, b) in seq.clients.iter().zip(&par.clients) {
        assert_eq!(a.benign_ac, b.benign_ac);
        assert_eq!(a.attack_sr, b.attack_sr);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_killed_midway_resumes_to_identical_final_params() {
    // The acceptance scenario: a 20-round run killed at round 10 must
    // resume from its checkpoint and land on the same final parameters as
    // an uninterrupted run.
    let dir = temp_dir("resume");
    let mut cfg = tiny_cfg();
    cfg.rounds = 20;
    cfg.eval_every = 10;
    cfg.attack = AttackKind::None;
    cfg.defense = DefenseKind::None;
    cfg.algo = FlAlgo::Ditto;

    let uninterrupted = Scenario::new(cfg.clone()).run();

    // First life: checkpoints every 5 rounds. Simulate a kill at round 10
    // by discarding everything the process produced after that point.
    Scenario::new(cfg.clone()).run_with(&RunOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 5,
        ..RunOptions::default()
    });
    for stale in ["round-000015.ckpt", "round-000020.ckpt"] {
        std::fs::remove_file(dir.join(stale)).expect("checkpoint existed");
    }

    // Second life: resume from the newest surviving checkpoint (round 10).
    let resumed = Scenario::new(cfg).run_with(&RunOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 5,
        resume: true,
        ..RunOptions::default()
    });

    assert_eq!(uninterrupted.final_global, resumed.final_global);
    for (a, b) in uninterrupted.clients.iter().zip(&resumed.clients) {
        assert_eq!(a.benign_ac, b.benign_ac);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds a snapshot from flat random material.
fn snapshot_from(
    run_seed: u64,
    config_hash: u64,
    round: u32,
    global: Vec<f32>,
    state_payload: Vec<f32>,
    mask: u64,
) -> Snapshot {
    let client_states = (0..8)
        .map(|i| {
            if mask & (1 << i) != 0 {
                Some(state_payload.clone())
            } else {
                None
            }
        })
        .collect();
    Snapshot {
        run_seed,
        config_hash,
        round,
        global,
        client_states,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checkpoint_codec_roundtrips(
        run_seed in 0u64..u64::MAX,
        config_hash in 0u64..u64::MAX,
        round in 0u32..100_000,
        global in prop::collection::vec(-1.0e6f32..1.0e6, 0..48),
        state_payload in prop::collection::vec(-10.0f32..10.0, 0..8),
        mask in 0u64..256,
    ) {
        let snap = snapshot_from(run_seed, config_hash, round, global, state_payload, mask);
        let decoded = Snapshot::decode(&snap.encode());
        prop_assert!(decoded.is_ok());
        prop_assert_eq!(decoded.unwrap(), snap);
    }

    #[test]
    fn truncated_checkpoints_error_instead_of_panicking(
        seed in 0u64..u64::MAX,
        global in prop::collection::vec(-10.0f32..10.0, 1..32),
        cut_frac in 0.0f64..1.0,
    ) {
        let snap = snapshot_from(seed, seed ^ 0xA5A5, 7, global, vec![1.0], 3);
        let bytes = snap.encode();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(Snapshot::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn corrupted_checkpoints_error_instead_of_panicking(
        seed in 0u64..u64::MAX,
        global in prop::collection::vec(-10.0f32..10.0, 1..32),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let snap = snapshot_from(seed, seed ^ 0x5A5A, 11, global, vec![2.0], 5);
        let mut bytes = snap.encode();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        prop_assert!(Snapshot::decode(&bytes).is_err());
    }
}
