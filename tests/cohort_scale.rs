//! Paper-scale cohort engine acceptance tests.
//!
//! Three guarantees back the lazy resident-shard cohort and the
//! work-stealing dispatcher:
//!
//! 1. **Laziness is bitwise-invisible at the data layer.** A client shard
//!    is a pure function of `(seed, client_id)`, so the lazy LRU backing
//!    must hand out bit-identical splits to an eager materialization of
//!    the same `ShardSpec` — including *re-renders* after eviction.
//! 2. **The lazy scenario family is pinned and worker-invariant.** A
//!    lazily-backed run is a distinct scenario family from the legacy
//!    eager Dirichlet partition (it consumes no partition RNG draws), so
//!    its canonical event hash gets its own golden fixture
//!    (`tests/fixtures/golden_lazy_cohort.hash`), asserted at workers
//!    1/2/4/8 — the stealing dispatcher may move work between lanes but
//!    never the result. Regenerate like the other golden fixtures: run,
//!    copy the `actual` hash from the failure message, call it out in the
//!    PR description.
//! 3. **A 4096-client run is memory-bounded.** With a 64 MB shard budget
//!    the resident set must stay under budget for the whole run while the
//!    cohort (~25 KB/client, ~100 MB eager) plainly does not fit — the
//!    bytes-per-client envelope that makes paper-scale populations
//!    tractable. Release-only: the debug round loop is an order of
//!    magnitude slower and CI runs this under the `cohort-scale` job.

use collapois::core::scenario::{
    AttackKind, CohortMode, DefenseKind, RunOptions, Scenario, ScenarioConfig,
};
use collapois::data::{Dataset, FederatedDataset};

/// FNV-1a over the little-endian `f32` bit patterns.
fn fnv1a_params(params: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in params {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn assert_datasets_bitwise_eq(a: &Dataset, b: &Dataset, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    assert_eq!(a.labels(), b.labels(), "{what}: labels");
    for i in 0..a.len() {
        let (fa, fb) = (a.features_of(i), b.features_of(i));
        assert_eq!(fa.len(), fb.len(), "{what}: sample {i} width");
        for (x, y) in fa.iter().zip(fb) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: sample {i} bits");
        }
    }
}

#[test]
fn lazy_shards_match_eager_materialization_bitwise_even_after_eviction() {
    let mut cfg = ScenarioConfig::quick_image(0.5, 0.1);
    cfg.num_clients = 32;
    cfg.samples_per_client = 12;
    let spec = cfg.shard_spec();
    let eager = FederatedDataset::eager_from_shards(&spec, cfg.num_clients);

    // Budget of ~4 shards: walking all 32 clients forces evictions, and
    // the second pass below re-renders everything from the RNG stream.
    let one_shard = eager.client(0).heap_bytes();
    let lazy = FederatedDataset::lazy(spec, cfg.num_clients, 4 * one_shard);

    for pass in 0..2 {
        for id in 0..cfg.num_clients {
            let (l, e) = (lazy.client(id), eager.client(id));
            let what = format!("pass {pass} client {id}");
            assert_datasets_bitwise_eq(&l.train, &e.train, &format!("{what} train"));
            assert_datasets_bitwise_eq(&l.test, &e.test, &format!("{what} test"));
            assert_datasets_bitwise_eq(&l.val, &e.val, &format!("{what} val"));
        }
    }
    let stats = lazy.shard_stats().expect("lazy backing reports stats");
    assert!(
        stats.evictions > 0,
        "a 4-shard budget over 32 clients must evict (stats: {stats:?})"
    );
    assert!(
        stats.resident_bytes <= stats.budget_bytes,
        "resident {} exceeds budget {}",
        stats.resident_bytes,
        stats.budget_bytes
    );
}

fn lazy_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::quick_image(1.0, 0.1);
    cfg.num_clients = 48;
    cfg.samples_per_client = 16;
    cfg.rounds = 3;
    cfg.eval_every = 3;
    cfg.sample_rate = 0.5;
    cfg.trojan.epochs = 4;
    cfg.attack = AttackKind::CollaPois;
    cfg.defense = DefenseKind::NormBound;
    cfg.cohort = CohortMode::Lazy; // explicit: 48 is below the auto threshold
    cfg
}

#[test]
fn lazy_cohort_event_hash_matches_fixture_at_every_worker_count() {
    let fixture_path = format!(
        "{}/tests/fixtures/golden_lazy_cohort.hash",
        env!("CARGO_MANIFEST_DIR")
    );
    let expected = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|_| panic!("fixture missing: {fixture_path}"))
        .trim()
        .to_string();

    let cfg = lazy_cfg();
    let mut param_hash = None;
    for workers in [1usize, 2, 4, 8] {
        let report = Scenario::new(cfg.clone()).run_with(&RunOptions {
            workers,
            ..RunOptions::default()
        });
        let actual = format!("{:016x}", report.event_hash);
        assert_eq!(
            actual, expected,
            "lazy-cohort event hash diverged from the golden fixture at \
             workers={workers} (actual {actual}, expected {expected}); see \
             the module docs for when/how to regenerate"
        );
        // The stealing dispatcher must also leave the trained model
        // bitwise identical, not just the trace.
        let params = fnv1a_params(&report.final_global);
        match param_hash {
            None => param_hash = Some(params),
            Some(h) => assert_eq!(
                h, params,
                "final params diverged between worker counts at workers={workers}"
            ),
        }
        assert!(
            report.shard_stats.is_some(),
            "an explicitly lazy run must report shard stats"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: run via the cohort-scale CI job (cargo test --release)"
)]
fn four_thousand_client_run_stays_within_the_shard_budget() {
    const BUDGET_MB: usize = 64;
    let mut cfg = ScenarioConfig::quick_image(1.0, 0.05);
    cfg.num_clients = 4096;
    cfg.samples_per_client = 30;
    cfg.rounds = 2;
    cfg.eval_every = 2;
    cfg.sample_rate = 64.0 / 4096.0;
    cfg.trojan.epochs = 2;
    cfg.attack = AttackKind::CollaPois;
    cfg.shard_budget_mb = BUDGET_MB; // cohort stays Auto: 4096 >= threshold

    let report = Scenario::new(cfg.clone()).run_with(&RunOptions {
        workers: 2,
        ..RunOptions::default()
    });
    let stats = report.shard_stats.expect("4096 clients must run lazily");
    assert_eq!(stats.budget_bytes, BUDGET_MB << 20);
    assert!(
        stats.resident_bytes <= stats.budget_bytes,
        "resident {} bytes exceeds the declared {} byte budget",
        stats.resident_bytes,
        stats.budget_bytes
    );
    // The budget must be doing real work: the full cohort does not fit,
    // so first-touch renders beyond the envelope are paid with evictions.
    assert!(
        stats.misses >= cfg.num_clients as u64,
        "every client is touched at least once (misses: {})",
        stats.misses
    );
    assert!(
        stats.evictions > 0,
        "a 64 MB budget cannot hold 4096 shards without evicting (stats: {stats:?})"
    );
}
