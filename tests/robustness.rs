//! Failure-injection and robustness integration tests: extreme adversaries,
//! degenerate cohorts, and numerical sanity of every aggregation rule under
//! attack.

use collapois::core::scenario::{AttackKind, DefenseKind, FlAlgo, Scenario, ScenarioConfig};
use collapois::fl::aggregate::{
    Aggregator, CoordinateMedian, Crfl, DpAggregator, FedAvg, Flare, Krum, NormBound,
    RobustLearningRate, SignSgd, TrimmedMean,
};
use collapois::fl::update::ClientUpdate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_aggregators() -> Vec<Box<dyn Aggregator>> {
    vec![
        Box::new(FedAvg::new()),
        Box::new(Krum::new(1)),
        Box::new(Krum::multi(1, 2)),
        Box::new(CoordinateMedian::new()),
        Box::new(TrimmedMean::new(0.2)),
        Box::new(NormBound::new(1.0).with_noise(0.01)),
        Box::new(DpAggregator::new(1.0, 0.3)),
        Box::new(RobustLearningRate::new(2)),
        Box::new(SignSgd::new(0.01)),
        Box::new(Flare::new(4.0)),
        Box::new(Crfl::new(10.0, 0.01)),
    ]
}

#[test]
fn every_aggregator_survives_extreme_outliers() {
    // One client submitting a 1e6-scale update among small benign ones
    // (within every rule's declared tolerance — trimmed mean with beta=0.2
    // absorbs 1 outlier per side at n=8): no rule may produce NaN/inf, and
    // the robust rules must not let the aggregate explode to the outlier
    // scale.
    let dim = 64;
    let mut updates: Vec<ClientUpdate> = (0..7)
        .map(|i| ClientUpdate::new(i, vec![0.01 * (i as f32 + 1.0); dim], 8))
        .collect();
    updates.push(ClientUpdate::new(7, vec![1e6; dim], 8));
    let mut rng = StdRng::seed_from_u64(0);
    for mut agg in all_aggregators() {
        let out = agg.aggregate(&updates, dim, &mut rng);
        assert_eq!(out.len(), dim, "{}", agg.name());
        assert!(
            out.iter().all(|v| v.is_finite()),
            "{} produced non-finite output",
            agg.name()
        );
        let robust = matches!(
            agg.name(),
            "krum" | "multi-krum" | "median" | "trimmed-mean" | "norm-bound" | "dp" | "signsgd"
        );
        if robust {
            let max = out.iter().cloned().fold(0.0f32, |a, b| a.max(b.abs()));
            assert!(max < 1e5, "{}: outliers leaked through ({max})", agg.name());
        }
    }
}

#[test]
fn every_aggregator_handles_single_update_and_empty_round() {
    let dim = 16;
    let single = vec![ClientUpdate::new(0, vec![0.5; dim], 4)];
    let mut rng = StdRng::seed_from_u64(1);
    for mut agg in all_aggregators() {
        let out = agg.aggregate(&[], dim, &mut rng);
        assert_eq!(out.len(), dim, "{} empty round", agg.name());
        let out = agg.aggregate(&single, dim, &mut rng);
        assert_eq!(out.len(), dim, "{} single update", agg.name());
        assert!(out.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn mrepl_under_median_does_not_destroy_the_model() {
    let mut cfg = ScenarioConfig::quick_image(0.5, 0.1);
    cfg.num_clients = 16;
    cfg.samples_per_client = 25;
    cfg.rounds = 12;
    cfg.eval_every = 12;
    cfg.sample_rate = 0.5;
    cfg.trojan.epochs = 10;
    cfg.attack = AttackKind::MRepl;
    cfg.defense = DefenseKind::Median;
    cfg.seed = 31;
    let report = Scenario::new(cfg).run();
    assert!(report.final_global.iter().all(|v| v.is_finite()));
    let last = report.final_round();
    assert!(
        last.benign_accuracy > 0.2,
        "median should keep training usable under MRepl: {}",
        last.benign_accuracy
    );
}

#[test]
fn all_defense_algo_combinations_run_without_panicking() {
    // Smoke matrix: every defense × every FL algorithm on a tiny scenario.
    for &defense in DefenseKind::all() {
        for algo in [
            FlAlgo::FedAvg,
            FlAlgo::FedDc,
            FlAlgo::MetaFed,
            FlAlgo::Ditto,
        ] {
            let mut cfg = ScenarioConfig::quick_image(1.0, 0.1);
            cfg.num_clients = 10;
            cfg.samples_per_client = 20;
            cfg.rounds = 3;
            cfg.eval_every = 3;
            cfg.sample_rate = 0.5;
            cfg.trojan.epochs = 4;
            cfg.attack = AttackKind::CollaPois;
            cfg.defense = defense;
            cfg.algo = algo;
            cfg.seed = 13;
            let report = Scenario::new(cfg).run();
            assert!(
                report.final_global.iter().all(|v| v.is_finite()),
                "{:?} x {:?} produced non-finite model",
                defense,
                algo
            );
        }
    }
}

#[test]
fn full_sampling_rate_round_includes_everyone() {
    let mut cfg = ScenarioConfig::quick_image(1.0, 0.0);
    cfg.num_clients = 8;
    cfg.samples_per_client = 20;
    cfg.rounds = 1;
    cfg.eval_every = 1;
    cfg.sample_rate = 1.0;
    cfg.attack = AttackKind::None;
    cfg.collect_updates = true;
    let report = Scenario::new(cfg).run();
    let updates = report.records[0].updates.as_ref().expect("collected");
    assert_eq!(updates.len(), 8);
}
