//! Integration tests validating Theorems 1–3 against measured trajectories
//! from real simulation runs (not just the closed forms).

use collapois::core::analysis::split_updates;
use collapois::core::scenario::{AttackKind, Scenario, ScenarioConfig};
use collapois::core::theory::theorem1::{estimate_angle_stats, theorem1_bound};
use collapois::core::theory::theorem2::check_bound;
use collapois::core::theory::theorem3::{estimation_error, lower_bound, upper_bound_sampled};
use collapois::stats::geometry::{angles_to_reference, mean_vector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(alpha: f64) -> collapois::core::scenario::ScenarioReport {
    let mut cfg = ScenarioConfig::quick_image(alpha, 0.1);
    cfg.num_clients = 20;
    cfg.samples_per_client = 30;
    cfg.rounds = 20;
    cfg.eval_every = 20;
    cfg.sample_rate = 0.4;
    cfg.trojan.epochs = 25;
    cfg.attack = AttackKind::CollaPois;
    cfg.collect_updates = true;
    cfg.seed = 99;
    Scenario::new(cfg).run()
}

/// Benign-vs-malicious-direction angles pooled over a run.
fn benign_angles(report: &collapois::core::scenario::ScenarioReport) -> Vec<f64> {
    let mut angles = Vec::new();
    for r in &report.records {
        let Some(updates) = &r.updates else { continue };
        let (benign, malicious) = split_updates(updates, &report.compromised);
        if let Some(dir) = mean_vector(&malicious) {
            angles.extend(angles_to_reference(&benign, &dir));
        }
    }
    angles
}

#[test]
fn theorem1_bound_shrinks_with_measured_diversity() {
    // Measured angle stats at high vs low diversity feed Eq. 5: the non-IID
    // run must require at most as many compromised clients.
    let diverse = run(0.01);
    let uniform = run(100.0);
    let a_div = estimate_angle_stats(&benign_angles(&diverse));
    let a_uni = estimate_angle_stats(&benign_angles(&uniform));
    assert!(a_div.n >= 10 && a_uni.n >= 10, "need angle samples");
    let b_div = theorem1_bound(a_div.mu, a_div.sigma, 0.9, 1.0, 1000);
    let b_uni = theorem1_bound(a_uni.mu, a_uni.sigma, 0.9, 1.0, 1000);
    assert!(
        b_div <= b_uni + 50.0,
        "diverse data must not need (meaningfully) more clients: {b_div:.0} vs {b_uni:.0}"
    );
}

#[test]
fn theorem2_bound_holds_along_the_trajectory() {
    let report = run(0.1);
    let x = &report.trojan.as_ref().expect("X").params;
    let a = report.config.collapois.psi_low;
    let mut checked = 0;
    // At each recorded round with malicious participation, the distance from
    // X must satisfy Eq. 6 with zeta = the residual we can measure directly:
    // zeta = theta^{t+1} - (theta^t + delta_c) for the pure-malicious view.
    for pair in report.records.windows(2) {
        let (r0, r1) = (&pair[0], &pair[1]);
        let (Some(updates), Some(theta0), Some(theta1)) =
            (&r0.updates, &r0.global_before, &r1.global_before)
        else {
            continue;
        };
        let (_, malicious) = split_updates(updates, &report.compromised);
        let Some(delta) = malicious.first() else {
            continue;
        };
        // zeta: what the global actually did minus what the compromised
        // client alone would have produced.
        let zeta: Vec<f32> = theta1
            .iter()
            .zip(theta0.iter())
            .zip(delta.iter())
            .map(|((t1, t0), d)| t1 - (t0 + d))
            .collect();
        let check = check_bound(theta1, x, delta, a, &zeta);
        assert!(
            check.holds,
            "round {}: distance {:.4} exceeds bound {:.4}",
            r0.round, check.distance, check.bound
        );
        checked += 1;
    }
    assert!(checked >= 3, "too few malicious rounds checked: {checked}");
}

#[test]
fn theorem3_sandwich_on_measured_run() {
    // Theorem 3's algebra treats the flagged compromised clients' models as
    // the global model θ^t they hold, so with p = 1 the server's estimation
    // error is ‖θ^t − X‖: Δθ_c = ψ_c(X − θ^t) gives the Eq. 7 lower bound
    // ‖ΣΔθ_c‖/(m·b) = (mean ψ/b)·‖X − θ^t‖ ≤ Error, and the subset-max over
    // submitted client models upper-bounds it.
    let report = run(0.1);
    let x = &report.trojan.as_ref().expect("X").params;
    let b = report.config.collapois.psi_high;
    let mut rng = StdRng::seed_from_u64(0);
    let mut checked = 0;
    for r in &report.records {
        let (Some(updates), Some(theta)) = (&r.updates, &r.global_before) else {
            continue;
        };
        let (benign, malicious) = split_updates(updates, &report.compromised);
        let m = malicious.len();
        if m == 0 || benign.len() < m {
            continue;
        }
        // Error with p = 1: flagged clients hold θ^t.
        let err = estimation_error(&[theta.as_slice()], x);
        let lb = lower_bound(&malicious, 1.0, m, b);
        // Subset-max over submitted models (θ^t + Δ for every participant).
        let all_models: Vec<Vec<f32>> = updates
            .iter()
            .map(|u| theta.iter().zip(&u.delta).map(|(t, d)| t + d).collect())
            .collect();
        let all_refs: Vec<&[f32]> = all_models.iter().map(|v| v.as_slice()).collect();
        let ub = upper_bound_sampled(&mut rng, &all_refs, x, m.min(all_refs.len()), 200);
        assert!(
            lb <= err + 1e-6,
            "round {}: lb {lb:.4} > err {err:.4}",
            r.round
        );
        // The sampled upper bound explores only a few hundred subsets, so
        // allow a small slack.
        assert!(
            err <= 1.25 * ub + 1e-6,
            "round {}: err {err:.4} > ub {ub:.4}",
            r.round
        );
        checked += 1;
    }
    assert!(checked >= 2, "too few rounds checked: {checked}");
}

#[test]
fn more_diversity_scatters_benign_angles() {
    // The Fig. 3 observable that powers Theorem 1: smaller alpha = larger
    // benign pairwise scatter relative to the malicious direction.
    let diverse = run(0.01);
    let uniform = run(100.0);
    let s_div = estimate_angle_stats(&benign_angles(&diverse));
    let s_uni = estimate_angle_stats(&benign_angles(&uniform));
    assert!(
        s_div.mu + s_div.sigma >= s_uni.mu,
        "diverse run should not be dramatically tighter: div=({:.3},{:.3}) uni=({:.3},{:.3})",
        s_div.mu,
        s_div.sigma,
        s_uni.mu,
        s_uni.sigma
    );
}
