//! Property-based tests (proptest) over the workspace's core invariants.

use collapois::core::theory::theorem1::theorem1_bound;
use collapois::core::theory::theorem2::theorem2_bound;
use collapois::data::partition::dirichlet_partition;
use collapois::data::sample::Dataset;
use collapois::data::trigger::{PatchTrigger, TextTrigger, Trigger, WaNetTrigger};
use collapois::fl::aggregate::{
    Aggregator, CoordinateMedian, FedAvg, Flare, Krum, NormBound, TrimmedMean,
};
use collapois::fl::update::ClientUpdate;
use collapois::nn::zoo::ModelSpec;
use collapois::stats::geometry::l2_norm;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn labelled_dataset(labels: Vec<usize>, classes: usize) -> Dataset {
    let mut ds = Dataset::empty(&[1], classes);
    for &y in &labels {
        ds.push(&[y as f32], y);
    }
    ds
}

fn updates_from(vs: &[Vec<f32>]) -> Vec<ClientUpdate> {
    vs.iter()
        .enumerate()
        .map(|(i, v)| ClientUpdate::new(i, v.clone(), 1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dirichlet partitioning is an exact cover with no empty client, for
    /// any alpha and client count.
    #[test]
    fn partition_is_exact_cover(
        seed in 0u64..1000,
        n_clients in 2usize..20,
        alpha in 0.01f64..100.0,
        classes in 2usize..8,
    ) {
        let n_samples = n_clients * 10;
        let labels: Vec<usize> = (0..n_samples).map(|i| i % classes).collect();
        let ds = labelled_dataset(labels, classes);
        let mut rng = StdRng::seed_from_u64(seed);
        let parts = dirichlet_partition(&mut rng, &ds, n_clients, alpha);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n_samples).collect::<Vec<_>>());
        prop_assert!(parts.iter().all(|p| !p.is_empty()));
    }

    /// Flat parameter vectors round-trip through any MLP architecture.
    #[test]
    fn param_roundtrip(
        seed in 0u64..1000,
        input in 1usize..12,
        hidden in 1usize..16,
        classes in 2usize..6,
    ) {
        let spec = ModelSpec::mlp(input, &[hidden], classes);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = spec.build(&mut rng);
        let p = model.params();
        prop_assert_eq!(p.len(), model.param_count());
        let shifted: Vec<f32> = p.iter().map(|v| v + 0.25).collect();
        model.set_params(&shifted);
        prop_assert_eq!(model.params(), shifted);
    }

    /// FedAvg of identical updates returns that update; median and trimmed
    /// mean stay within per-coordinate bounds; Krum returns an input.
    #[test]
    fn aggregator_invariants(
        seed in 0u64..1000,
        n in 2usize..8,
        dim in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let vs: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
            .collect();
        let updates = updates_from(&vs);
        let mut srv_rng = StdRng::seed_from_u64(seed ^ 1);

        // Identical updates: FedAvg is the identity.
        let same = updates_from(&vec![vs[0].clone(); n]);
        let avg = FedAvg::new().aggregate(&same, dim, &mut srv_rng);
        for (a, b) in avg.iter().zip(&vs[0]) {
            prop_assert!((a - b).abs() < 1e-5);
        }

        // Median / trimmed mean bounded by min/max per coordinate.
        let med = CoordinateMedian::new().aggregate(&updates, dim, &mut srv_rng);
        let trim = TrimmedMean::new(0.2).aggregate(&updates, dim, &mut srv_rng);
        for c in 0..dim {
            let lo = vs.iter().map(|v| v[c]).fold(f32::INFINITY, f32::min);
            let hi = vs.iter().map(|v| v[c]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(med[c] >= lo - 1e-5 && med[c] <= hi + 1e-5);
            prop_assert!(trim[c] >= lo - 1e-5 && trim[c] <= hi + 1e-5);
        }

        // Krum selects one of the inputs.
        let krum = Krum::new(1).aggregate(&updates, dim, &mut srv_rng);
        prop_assert!(vs.iter().any(|v| v == &krum));

        // NormBound output never exceeds the bound.
        let nb = NormBound::new(1.0).aggregate(&updates, dim, &mut srv_rng);
        prop_assert!(l2_norm(&nb) <= 1.0 + 1e-5);

        // FLARE trust weights form a convex combination: output within the
        // per-coordinate hull.
        let fl = Flare::new(4.0).aggregate(&updates, dim, &mut srv_rng);
        for c in 0..dim {
            let lo = vs.iter().map(|v| v[c]).fold(f32::INFINITY, f32::min);
            let hi = vs.iter().map(|v| v[c]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(fl[c] >= lo - 1e-4 && fl[c] <= hi + 1e-4);
        }
    }

    /// Triggers are deterministic and label-preservingly bounded: WaNet
    /// keeps pixels in [0,1] for in-range inputs; the patch sets exactly its
    /// area; the text trigger is idempotent in direction.
    #[test]
    fn trigger_invariants(
        seed in 0u64..1000,
        side in 6usize..20,
        strength in 0.5f64..4.0,
    ) {
        let img: Vec<f32> = (0..side * side)
            .map(|i| ((i * 37 + seed as usize) % 100) as f32 / 100.0)
            .collect();
        let wanet = WaNetTrigger::new(side, 4, strength, seed);
        let mut a = img.clone();
        let mut b = img.clone();
        wanet.apply(&mut a);
        wanet.apply(&mut b);
        prop_assert_eq!(&a, &b); // deterministic
        prop_assert!(a.iter().all(|&v| (-1e-4..=1.0 + 1e-4).contains(&(v as f64))));

        let patch = PatchTrigger::badnets(side);
        let mut p = img.clone();
        patch.apply(&mut p);
        let changed = p.iter().zip(&img).filter(|(x, y)| x != y).count();
        prop_assert!(changed <= 9);

        let text = TextTrigger::new(side, 2.0, 0.5, seed);
        let mut t1 = vec![0.1f32; side];
        let mut t2 = vec![0.9f32; side];
        text.apply(&mut t1);
        text.apply(&mut t2);
        // Strong blend makes different inputs align.
        let cs = collapois::stats::geometry::cosine_similarity(&t1, &t2).unwrap();
        prop_assert!(cs > 0.0, "cs={cs}");
    }

    /// Theorem 1: the bound lies in [0, N] and is monotone non-increasing in
    /// both mu and sigma over the valid domain.
    #[test]
    fn theorem1_domain_and_monotonicity(
        mu in 0.0f64..1.4,
        sigma in 0.0f64..1.0,
        n in 10usize..10_000,
    ) {
        let b = theorem1_bound(mu, sigma, 0.9, 1.0, n);
        prop_assert!((0.0..=n as f64).contains(&b));
        let b_mu = theorem1_bound(mu + 0.05, sigma, 0.9, 1.0, n);
        let b_sig = theorem1_bound(mu, sigma + 0.05, 0.9, 1.0, n);
        prop_assert!(b_mu <= b + 1e-9);
        prop_assert!(b_sig <= b + 1e-9);
    }

    /// Theorem 2: the bound is non-negative and increases as `a` decreases.
    #[test]
    fn theorem2_bound_properties(
        norm in 0.0f64..10.0,
        a in 0.05f64..1.0,
        zeta in 0.0f64..5.0,
    ) {
        let b = theorem2_bound(norm, a, zeta);
        prop_assert!(b >= zeta - 1e-12);
        let tighter = theorem2_bound(norm, (a + 1.0) / 2.0, zeta);
        prop_assert!(tighter <= b + 1e-12);
    }
}

/// Strategies landed with the semantic-backdoor / SCAFFOLD / fine-pruning
/// grid arms: the control-variate bookkeeping and the region-membership
/// ASR metric each carry an exact invariant worth fuzzing.
mod backdoor_arms {
    use super::*;
    use collapois::data::poison::BackdoorEval;
    use collapois::data::semantic::SemanticRegion;
    use collapois::fl::config::FlConfig;
    use collapois::fl::personalize::{Personalization, Scaffold};
    use collapois::fl::scratch::ClientScratch;
    use rand::seq::SliceRandom;
    use rand::Rng;

    fn client_data(rng: &mut StdRng, n: usize, classes: usize) -> Dataset {
        let mut ds = Dataset::empty(&[4], classes);
        for i in 0..n {
            let f: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            ds.push(&f, i % classes);
        }
        ds
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// SCAFFOLD's bookkeeping invariant: after any number of full
        /// participation rounds, the server control variate equals the mean
        /// of the client variates — equivalently Σ_i (c_i − c) ≈ 0.
        #[test]
        fn scaffold_control_variates_sum_to_zero(
            seed in 0u64..500,
            n_clients in 2usize..5,
            rounds in 1usize..4,
        ) {
            let spec = ModelSpec::mlp(4, &[6], 2);
            let cfg = FlConfig::quick(spec.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            let model = spec.build(&mut rng);
            let global = model.params();
            let mut scratch = ClientScratch::for_model(&model);
            let data: Vec<Dataset> = (0..n_clients)
                .map(|_| client_data(&mut rng, 24, 2))
                .collect();
            let mut s = Scaffold::new();
            s.init(n_clients, global.len());
            for _ in 0..rounds {
                for cid in 0..n_clients {
                    let out = s.local_train(cid, &global, &data[cid], &cfg, &mut scratch, &mut rng);
                    s.commit(cid, out.commit);
                }
            }
            for k in 0..global.len() {
                let residual: f32 = (0..n_clients)
                    .map(|cid| s.client_control(cid).map_or(0.0, |v| v[k]) - s.server_control()[k])
                    .sum();
                prop_assert!(
                    residual.abs() < 1e-3,
                    "coordinate {k}: sum of (c_i - c) = {residual}"
                );
            }
        }

        /// The semantic backdoor's Attack SR is permutation-invariant: the
        /// region predicate is pure in each sample's features, so shuffling
        /// the eval dataset changes neither the eval-set size nor the
        /// success ratio computed from it.
        #[test]
        fn semantic_asr_is_permutation_invariant(
            seed in 0u64..500,
            n in 20usize..80,
            member_fraction in 0.2f64..0.9,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ds = client_data(&mut rng, n, 3);
            let region = SemanticRegion::fit(&ds, 1, 0, member_fraction, seed ^ 0xABCD);
            let spec = ModelSpec::mlp(4, &[6], 3);
            let mut model = spec.build(&mut rng);
            let mut asr = |d: &Dataset| -> (usize, f64) {
                let eval = region.eval_set(d);
                if eval.is_empty() {
                    return (0, 0.0);
                }
                let (x, _) = eval.as_batch();
                let preds = model.predict(&x);
                let hits = preds.iter().filter(|&&p| p == region.target_class()).count();
                (eval.len(), hits as f64 / preds.len() as f64)
            };
            let mut perm: Vec<usize> = (0..ds.len()).collect();
            perm.shuffle(&mut rng);
            let shuffled = ds.subset(&perm);
            let (len_a, sr_a) = asr(&ds);
            let (len_b, sr_b) = asr(&shuffled);
            prop_assert_eq!(len_a, len_b, "eval-set size must not depend on order");
            prop_assert_eq!(sr_a.to_bits(), sr_b.to_bits(), "ASR must be bitwise order-free");
        }
    }
}
