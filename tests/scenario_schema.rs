//! Property-based and negative tests over the scenario-matrix schema
//! (satellite of the grid conformance harness in `tests/grid_matrix.rs`).
//!
//! The round-trip property: any scenario file the schema accepts can be
//! canonicalized with [`GridSpec::to_toml`] and reparsed into the *same*
//! grid — same cell ids, same expansion order, same config hashes. The
//! negative half: malformed documents (unknown keys, out-of-range α,
//! fractions above 1, type confusion) surface as *typed* [`SchemaError`]s
//! naming the offending key, never as silently-defaulted cells.

use collapois_grid::schema::{GridSpec, SchemaError, SCHEMA_VERSION};
use collapois_grid::toml::fmt_float;
use proptest::prelude::*;

/// Builds a scenario document from generated knobs.
fn doc(
    alpha: f64,
    frac: f64,
    clients: usize,
    rounds: usize,
    seed: u64,
    dropout: f64,
    workers: usize,
) -> String {
    format!(
        "schema_version = {SCHEMA_VERSION}\n\
         name = \"prop\"\n\
         [run]\n\
         workers = {workers}\n\
         [base]\n\
         alpha = {}\n\
         compromised_frac = {}\n\
         clients = {clients}\n\
         samples_per_client = 10\n\
         rounds = {rounds}\n\
         eval_every = 1\n\
         seed = {seed}\n\
         quantization = \"f16\"\n\
         [axes]\n\
         attack = [\"collapois\", \"label-flip\", \"dpois\"]\n\
         defense = [\"none\", \"krum\"]\n\
         [variants.plain]\n\
         [variants.faulted]\n\
         fault.dropout = {}\n",
        fmt_float(alpha),
        fmt_float(frac),
        fmt_float(dropout),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// parse -> to_toml -> parse is the identity on the grid: same spec,
    /// same cells, same config hashes, and the canonical form is a fixed
    /// point.
    #[test]
    fn accepted_documents_round_trip_canonically(
        alpha_m in 1u32..2000,
        frac_m in 0u32..=100,
        clients in 4usize..40,
        rounds in 1usize..30,
        seed in 0u64..1_000_000,
        dropout_m in 0u32..=100,
        workers in 0usize..8,
    ) {
        let text = doc(
            alpha_m as f64 / 100.0,
            frac_m as f64 / 100.0,
            clients,
            rounds,
            seed,
            dropout_m as f64 / 100.0,
            workers,
        );
        let spec = GridSpec::parse(&text).expect("generated document is in-schema");
        let canon = spec.to_toml();
        let reparsed = GridSpec::parse(&canon).expect("canonical form reparses");
        prop_assert_eq!(&spec, &reparsed);
        prop_assert_eq!(&canon, &reparsed.to_toml());
        let a = spec.cells().unwrap();
        let b = reparsed.cells().unwrap();
        prop_assert_eq!(a.len(), 3 * 2 * 2);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.id, &y.id);
            prop_assert_eq!(x.index, y.index);
            prop_assert_eq!(x.config_hash, y.config_hash);
            prop_assert_eq!(&x.spec, &y.spec);
        }
    }

    /// The config hash is a function of the resolved settings: insensitive
    /// to canonicalization, sensitive to any changed value.
    #[test]
    fn config_hash_tracks_resolved_settings(
        alpha_m in 1u32..2000,
        seed in 0u64..1_000_000,
    ) {
        let text = doc(alpha_m as f64 / 100.0, 0.5, 12, 3, seed, 0.1, 0);
        let spec = GridSpec::parse(&text).unwrap();
        let canon = GridSpec::parse(&spec.to_toml()).unwrap();
        let a = spec.cells().unwrap();
        let b = canon.cells().unwrap();
        prop_assert_eq!(a[0].config_hash, b[0].config_hash);
        let other = doc(alpha_m as f64 / 100.0, 0.5, 12, 3, seed ^ 1, 0.1, 0);
        let c = GridSpec::parse(&other).unwrap().cells().unwrap();
        prop_assert_ne!(a[0].config_hash, c[0].config_hash);
    }

    /// Out-of-range α is always a typed OutOfRange naming `alpha`.
    #[test]
    fn nonpositive_alpha_is_a_typed_error(alpha_m in 0i64..1000) {
        let text = doc(-(alpha_m as f64) / 100.0, 0.1, 12, 3, 1, 0.0, 0);
        match GridSpec::parse(&text) {
            Err(SchemaError::OutOfRange { path, .. }) => prop_assert_eq!(path, "alpha"),
            other => prop_assert!(false, "expected OutOfRange(alpha), got {:?}", other),
        }
    }

    /// A compromised fraction above 1 is always a typed OutOfRange.
    #[test]
    fn fraction_above_one_is_a_typed_error(excess_m in 1u32..1000) {
        let text = doc(1.0, 1.0 + excess_m as f64 / 100.0, 12, 3, 1, 0.0, 0);
        match GridSpec::parse(&text) {
            Err(SchemaError::OutOfRange { path, .. }) => {
                prop_assert_eq!(path, "compromised_frac")
            }
            other => prop_assert!(
                false,
                "expected OutOfRange(compromised_frac), got {:?}",
                other
            ),
        }
    }
}

#[test]
fn unknown_keys_are_typed_errors_at_every_level() {
    let base = doc(1.0, 0.1, 12, 3, 1, 0.1, 0);
    for (needle, replacement, expected_path) in [
        ("alpha = 1.0", "aplha = 1.0", "aplha"),
        ("[axes]\nattack", "[axes]\nattacc", "axes.attacc"),
        (
            "fault.dropout = 0.1",
            "fault.dropoutt = 0.1",
            "variants.faulted.fault.dropoutt",
        ),
        ("workers = 0", "werkers = 0", "run.werkers"),
    ] {
        let text = base.replace(needle, replacement);
        match GridSpec::parse(&text) {
            Err(SchemaError::UnknownKey { path }) => assert_eq!(path, expected_path),
            other => panic!("{replacement}: expected UnknownKey, got {other:?}"),
        }
    }
    // A whole unknown top-level table is rejected too.
    let text = format!("{base}[extras]\nx = 1\n");
    assert!(matches!(
        GridSpec::parse(&text),
        Err(SchemaError::UnknownKey { .. })
    ));
}

#[test]
fn type_confusion_is_a_typed_error() {
    let base = doc(1.0, 0.1, 12, 3, 1, 0.1, 0);
    // Float where an integer is required (no silent truncation).
    let text = base.replace("rounds = 3", "rounds = 3.5");
    assert!(matches!(
        GridSpec::parse(&text),
        Err(SchemaError::WrongType { .. })
    ));
    // String where a number is required.
    let text = base.replace("alpha = 1.0", "alpha = \"high\"");
    assert!(matches!(
        GridSpec::parse(&text),
        Err(SchemaError::WrongType { .. })
    ));
    // Scalar where the axes table expects arrays.
    let text = base.replace(
        "attack = [\"collapois\", \"label-flip\", \"dpois\"]",
        "attack = \"collapois\"",
    );
    assert!(matches!(
        GridSpec::parse(&text),
        Err(SchemaError::WrongType { .. })
    ));
}

#[test]
fn quantization_axis_is_typed_and_hashed() {
    use collapois_core::scenario::Quantization;
    let base = doc(1.0, 0.1, 12, 3, 1, 0.1, 0);

    // Each accepted codec resolves into the cell config; distinct codecs
    // hash as distinct configurations.
    let mut hashes = Vec::new();
    for (name, expected) in [
        ("f32", Quantization::F32),
        ("f16", Quantization::F16),
        ("int8", Quantization::Int8),
    ] {
        let text = base.replace(
            "quantization = \"f16\"",
            &format!("quantization = \"{name}\""),
        );
        let cells = GridSpec::parse(&text).unwrap().cells().unwrap();
        assert_eq!(cells[0].spec.config.quantization, expected);
        hashes.push(cells[0].config_hash);
    }
    assert_ne!(hashes[0], hashes[1]);
    assert_ne!(hashes[1], hashes[2]);
    assert_ne!(hashes[0], hashes[2]);

    // An unknown codec is a typed OutOfRange naming the key.
    let text = base.replace("quantization = \"f16\"", "quantization = \"int4\"");
    match GridSpec::parse(&text) {
        Err(SchemaError::OutOfRange { path, message }) => {
            assert_eq!(path, "quantization");
            assert!(message.contains("int4"), "{message}");
        }
        other => panic!("expected OutOfRange(quantization), got {other:?}"),
    }

    // A non-string value is a typed WrongType.
    let text = base.replace("quantization = \"f16\"", "quantization = 8");
    match GridSpec::parse(&text) {
        Err(SchemaError::WrongType { path, .. }) => assert_eq!(path, "quantization"),
        other => panic!("expected WrongType(quantization), got {other:?}"),
    }
}

#[test]
fn version_gate_rejects_future_files() {
    let future =
        doc(1.0, 0.1, 12, 3, 1, 0.1, 0).replace("schema_version = 1", "schema_version = 2");
    assert!(matches!(
        GridSpec::parse(&future),
        Err(SchemaError::UnsupportedVersion { found: Some(2) })
    ));
}
