//! Fault-injection and graceful-degradation integration tests.
//!
//! The fault plan (`collapois::runtime::fault::FaultPlan`) injects client
//! dropout, deadline-shed stragglers, in-flight update corruption, and
//! checkpoint-write failures from RNG streams derived per `(round, unit)`.
//! These tests pin the end-to-end contracts:
//!
//! * a faulted run completes every round without panicking, and the JSONL
//!   trace records **exactly** the fault schedule the plan derives — the
//!   schedule is recomputed here from the plan and compared event for
//!   event;
//! * a torn (killed-mid-write) newest checkpoint is skipped on resume, and
//!   the resumed run is bitwise identical to an uninterrupted one;
//! * the fault schedule and the faulted result are invariant to the worker
//!   count;
//! * a 20%-dropout golden scenario matches a committed fixture hash at
//!   workers 1/2/4/8 (`tests/fixtures/golden_final_params_faulted.hash`);
//!   the companion invariant — a faulted round is bitwise equal to a
//!   fault-free round over the surviving cohort — is pinned at unit level
//!   by `collapois-fl`'s `faulted_run_matches_fault_free_run_over_survivors`.
//!
//! To regenerate the fixture after an intentional numerics change, run the
//! fixture test and copy the `actual` hash from the failure message.

use collapois::core::scenario::{AttackKind, DefenseKind, RunOptions, Scenario, ScenarioConfig};
use collapois::runtime::checkpoint;
use collapois::runtime::fault::{ClientFault, FaultPlan};
use collapois::runtime::trace::{read_trace, TraceEvent};
use std::path::PathBuf;

/// FNV-1a over the little-endian `f32` bit patterns.
fn fnv1a_params(params: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in params {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A small, fast scenario; `attack` toggles the CollaPois adversary so the
/// cheap tests can skip Trojan training.
fn fault_cfg(attack: AttackKind, rounds: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::quick_image(1.0, 0.05);
    cfg.num_clients = 10;
    cfg.samples_per_client = 20;
    cfg.rounds = rounds;
    cfg.eval_every = rounds;
    cfg.sample_rate = 0.5;
    cfg.trojan.epochs = 8;
    cfg.attack = attack;
    cfg.defense = DefenseKind::None;
    cfg
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("collapois-fault-{tag}-{}", std::process::id()))
}

/// Fault events of a trace, flattened to comparable tuples.
fn fault_events(events: &[TraceEvent]) -> Vec<(String, usize, usize, String, f64)> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ClientDropped {
                round,
                client,
                cause,
                delay_ms,
            } => Some(("dropped".into(), *round, *client, cause.clone(), *delay_ms)),
            TraceEvent::UpdateRejected {
                round,
                client,
                reason,
            } => Some(("rejected".into(), *round, *client, reason.clone(), 0.0)),
            _ => None,
        })
        .collect()
}

#[test]
fn faulted_run_completes_and_trace_matches_derived_schedule() {
    let cfg = fault_cfg(AttackKind::None, 6);
    let plan = FaultPlan {
        dropout: 0.25,
        straggler: 0.2,
        straggler_mean_ms: 8.0,
        deadline_ms: 10.0,
        corrupt: 0.3,
        checkpoint_fail: 0.5,
        ..FaultPlan::none()
    };
    let trace_path = tmp_path("schedule.jsonl");
    let ckpt_dir = tmp_path("schedule-ckpt");
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let report = Scenario::new(cfg.clone()).run_with(&RunOptions {
        trace_path: Some(trace_path.clone()),
        checkpoint_dir: Some(ckpt_dir.clone()),
        checkpoint_every: 2,
        fault: plan,
        ..RunOptions::default()
    });
    assert_eq!(report.final_round().round, cfg.rounds, "all rounds ran");
    assert!(report.profile.has_faults(), "the plan must actually fire");

    let events = read_trace(&trace_path).expect("trace readable");
    assert!(matches!(
        events.iter().last(),
        Some(TraceEvent::RunCompleted { rounds_executed, .. }) if *rounds_executed == cfg.rounds
    ));

    // Recompute the client-fault schedule from the plan and demand the
    // trace recorded exactly it.
    let mut predicted_drops: Vec<(usize, usize, &'static str)> = Vec::new();
    let mut predicted_corrupt: Vec<(usize, usize)> = Vec::new();
    for e in &events {
        if let TraceEvent::RoundStarted { round, sampled, .. } = e {
            for &cid in sampled {
                match plan.client_fault(cfg.seed, *round as u64, cid) {
                    ClientFault::None => {}
                    ClientFault::Dropout => predicted_drops.push((*round, cid, "dropout")),
                    ClientFault::Straggler { shed, .. } => {
                        if shed {
                            predicted_drops.push((*round, cid, "straggler"));
                        }
                    }
                    ClientFault::Corrupt => predicted_corrupt.push((*round, cid)),
                }
            }
        }
    }
    let traced_drops: Vec<(usize, usize, String)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ClientDropped {
                round,
                client,
                cause,
                ..
            } => Some((*round, *client, cause.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(
        traced_drops,
        predicted_drops
            .iter()
            .map(|&(r, c, cause)| (r, c, cause.to_string()))
            .collect::<Vec<_>>(),
        "every dropout/shed verdict the plan derives must be traced, in order"
    );
    assert!(!predicted_drops.is_empty(), "schedule should drop someone");

    // Corrupt clients that transmitted anything must be rejected with the
    // injected-corruption reason (clients with no training data transmit
    // nothing, so the traced set is a subset of the prediction).
    let traced_rejected: Vec<(usize, usize, String)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::UpdateRejected {
                round,
                client,
                reason,
            } => Some((*round, *client, reason.clone())),
            _ => None,
        })
        .collect();
    assert!(
        !traced_rejected.is_empty(),
        "corrupt=0.3 should reject someone"
    );
    for (round, client, reason) in &traced_rejected {
        assert_eq!(reason, "injected_corruption");
        assert!(
            predicted_corrupt.contains(&(*round, *client)),
            "rejection at round {round} client {client} not in the derived schedule"
        );
    }

    // Checkpoint writes: replay the per-attempt injection stream and demand
    // the trace shows the same attempt-by-attempt outcomes.
    const ATTEMPTS: usize = 3;
    for ckpt_round in [2usize, 4, 6] {
        let mut expected: Vec<(usize, bool)> = Vec::new(); // (attempt, gave_up)
        let mut expect_saved = false;
        for attempt in 1..=ATTEMPTS {
            if plan.checkpoint_attempt_fails(cfg.seed, ckpt_round as u64, attempt) {
                expected.push((attempt, attempt == ATTEMPTS));
            } else {
                expect_saved = true;
                break;
            }
        }
        let failures: Vec<(usize, bool)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::CheckpointWriteFailed {
                    round,
                    attempt,
                    gave_up,
                    ..
                } if *round == ckpt_round => Some((*attempt, *gave_up)),
                _ => None,
            })
            .collect();
        assert_eq!(failures, expected, "round {ckpt_round} failure sequence");
        let saved = events.iter().any(
            |e| matches!(e, TraceEvent::CheckpointSaved { round, .. } if *round == ckpt_round),
        );
        assert_eq!(saved, expect_saved, "round {ckpt_round} save outcome");
        let on_disk = checkpoint::checkpoint_path(&ckpt_dir, ckpt_round as u32).exists();
        assert_eq!(on_disk, expect_saved, "round {ckpt_round} file presence");
    }

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn resume_after_torn_checkpoint_write_is_bit_identical() {
    let cfg = fault_cfg(AttackKind::None, 8);
    let plan = FaultPlan {
        dropout: 0.2,
        ..FaultPlan::none()
    };

    // Reference: the same faulted run, uninterrupted and checkpoint-free.
    let reference = Scenario::new(cfg.clone()).run_with(&RunOptions {
        fault: plan,
        ..RunOptions::default()
    });

    // Checkpointed run (snapshots after rounds 2, 4, 6, 8)...
    let ckpt_dir = tmp_path("torn-ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Scenario::new(cfg.clone()).run_with(&RunOptions {
        checkpoint_dir: Some(ckpt_dir.clone()),
        checkpoint_every: 2,
        fault: plan,
        ..RunOptions::default()
    });

    // ...then simulate a kill during the newest write: the round-8 file is
    // torn mid-stream and a stray temp file from an unfinished rename is
    // left behind. Resume must see neither.
    let newest = checkpoint::checkpoint_path(&ckpt_dir, 8);
    let bytes = std::fs::read(&newest).expect("round-8 checkpoint exists");
    std::fs::write(&newest, &bytes[..bytes.len() / 3]).expect("tear newest");
    std::fs::write(ckpt_dir.join("round-000010.ckpt.tmp"), b"partial garbage").expect("stray tmp");

    let trace_path = tmp_path("torn-resume.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    let resumed = Scenario::new(cfg).run_with(&RunOptions {
        trace_path: Some(trace_path.clone()),
        checkpoint_dir: Some(ckpt_dir.clone()),
        checkpoint_every: 2,
        resume: true,
        fault: plan,
        ..RunOptions::default()
    });

    // Resumed from round 6 (the newest intact snapshot), not the torn 8.
    let events = read_trace(&trace_path).expect("trace readable");
    assert!(matches!(
        events.first(),
        Some(TraceEvent::RunStarted {
            resumed_from: Some(6),
            ..
        })
    ));
    assert_eq!(
        reference.final_global, resumed.final_global,
        "resume from the last intact checkpoint must be bit-identical"
    );

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn fault_schedule_and_result_are_worker_count_invariant() {
    let cfg = fault_cfg(AttackKind::CollaPois, 5);
    let plan = FaultPlan {
        dropout: 0.2,
        straggler: 0.2,
        straggler_mean_ms: 6.0,
        deadline_ms: 9.0,
        corrupt: 0.2,
        ..FaultPlan::none()
    };
    let mut baseline: Option<(Vec<(String, usize, usize, String, f64)>, u64)> = None;
    for workers in [1usize, 4] {
        let trace_path = tmp_path(&format!("invariance-w{workers}.jsonl"));
        let _ = std::fs::remove_file(&trace_path);
        let report = Scenario::new(cfg.clone()).run_with(&RunOptions {
            workers,
            trace_path: Some(trace_path.clone()),
            fault: plan,
            ..RunOptions::default()
        });
        let events = read_trace(&trace_path).expect("trace readable");
        let _ = std::fs::remove_file(&trace_path);
        let faults = fault_events(&events);
        assert!(!faults.is_empty(), "plan must fire at workers={workers}");
        let hash = fnv1a_params(&report.final_global);
        match &baseline {
            None => baseline = Some((faults, hash)),
            Some((f1, h1)) => {
                assert_eq!(&faults, f1, "fault schedule differs at workers={workers}");
                assert_eq!(hash, *h1, "final params differ at workers={workers}");
            }
        }
    }
}

#[test]
fn faulted_golden_scenario_matches_committed_fixture_at_every_worker_count() {
    let fixture_path = format!(
        "{}/tests/fixtures/golden_final_params_faulted.hash",
        env!("CARGO_MANIFEST_DIR")
    );
    let expected = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|_| panic!("fixture missing: {fixture_path}"))
        .trim()
        .to_string();

    let cfg = fault_cfg(AttackKind::CollaPois, 5);
    let plan = FaultPlan {
        dropout: 0.2,
        ..FaultPlan::none()
    };
    for workers in [1usize, 2, 4, 8] {
        let report = Scenario::new(cfg.clone()).run_with(&RunOptions {
            workers,
            fault: plan,
            ..RunOptions::default()
        });
        let actual = format!("{:016x}", fnv1a_params(&report.final_global));
        assert_eq!(
            actual, expected,
            "faulted final params diverged from the golden fixture at \
             workers={workers} (actual {actual}, expected {expected}); see \
             the module docs for when/how to regenerate"
        );
    }
}
