//! Golden end-to-end determinism test.
//!
//! Runs a small fixed CollaPois scenario for 5 rounds and hashes the final
//! global parameter vector's exact `f32` bit patterns, comparing against a
//! committed fixture (`tests/fixtures/golden_final_params.hash`). The same
//! hash must come out at every worker count — the runtime engine's
//! determinism guarantee — and must not drift across refactors of the
//! kernel layer, the aggregation rules, or the training loop.
//!
//! Since the round engine trains through persistent per-worker arenas
//! (`WorkerArenas<ClientScratch>`) by default, the worker sweep below is
//! also the pooled-vs-clone equivalence proof: the fixture hash was
//! produced by the historical allocate-per-client path, so matching it at
//! workers = 1, 2 and 4 shows the arena-reusing loop performs bitwise the
//! same floating-point work regardless of how clients are distributed over
//! lanes or which warm buffers they inherit.
//!
//! If a change *intentionally* alters the numerics (e.g. a new reduction
//! order), regenerate the fixture by running this test and copying the
//! `actual` hash from the failure message into the fixture file, and call
//! the change out in the PR description.

use collapois::core::scenario::{
    AttackKind, DefenseKind, FlAlgo, RunOptions, Scenario, ScenarioConfig,
};

/// FNV-1a over the little-endian `f32` bit patterns.
fn fnv1a_params(params: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in params {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn golden_cfg(defense: DefenseKind) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::quick_image(1.0, 0.05);
    cfg.num_clients = 10;
    cfg.samples_per_client = 20;
    cfg.rounds = 5;
    cfg.eval_every = 5;
    cfg.sample_rate = 0.5;
    cfg.trojan.epochs = 8;
    cfg.attack = AttackKind::CollaPois;
    cfg.defense = defense;
    cfg
}

/// Runs the golden scenario under `defense` at workers 1, 2, 4 and 8 and
/// asserts every run hashes to the committed fixture. The worker sweep
/// crosses every parallel path: the training fan-out, the sharded defense
/// kernels, the tree-reduced average and the pooled evaluation.
fn assert_matches_fixture(defense: DefenseKind, fixture: &str) {
    assert_cfg_matches_fixture(golden_cfg(defense), fixture);
}

fn assert_cfg_matches_fixture(cfg: ScenarioConfig, fixture: &str) {
    let fixture_path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let expected = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|_| panic!("fixture missing: {fixture_path}"))
        .trim()
        .to_string();

    for workers in [1usize, 2, 4, 8] {
        let report = Scenario::new(cfg.clone()).run_with(&RunOptions {
            workers,
            ..RunOptions::default()
        });
        let actual = format!("{:016x}", fnv1a_params(&report.final_global));
        assert_eq!(
            actual, expected,
            "final global params diverged from the golden fixture at \
             workers={workers} defense={:?} (actual {actual}, \
             expected {expected}); see the module docs for when/how to \
             regenerate",
            cfg.defense
        );
    }
}

#[test]
fn five_round_krum_scenario_matches_committed_fixture_at_every_worker_count() {
    // Krum routes the round through the (row-sharded) pairwise-distance
    // kernels on top of the dense/loss kernels every client step already
    // exercises.
    assert_matches_fixture(DefenseKind::Krum, "golden_final_params.hash");
}

#[test]
fn five_round_scaffold_semantic_fine_prune_scenario_matches_committed_fixture() {
    // The three arms landed together, pinned together: the semantic
    // backdoor's relabelled shards, SCAFFOLD's sequentially-committed
    // control variates, and the in-training fine-pruning hook all sit on
    // the same compute/commit split — one fixture proves the whole stack
    // is worker-count-invariant.
    let mut cfg = golden_cfg(DefenseKind::FinePrune);
    cfg.attack = AttackKind::Semantic;
    cfg.algo = FlAlgo::Scaffold;
    assert_cfg_matches_fixture(cfg, "golden_final_params_scaffold_semantic.hash");
}

#[test]
fn five_round_trimmed_mean_scenario_matches_committed_fixture_at_every_worker_count() {
    // Trimmed mean routes aggregation through the column-sharded
    // per-coordinate kernels — the other sharding axis.
    assert_matches_fixture(
        DefenseKind::TrimmedMean,
        "golden_final_params_trimmed_mean.hash",
    );
}
