//! Grid conformance harness (tier-1).
//!
//! Runs the committed CI smoke grid (`scenarios/smoke.toml` — 3 attacks ×
//! 3 defenses × {plain, faulted, sim, quant-f16, quant-int8, scaffold})
//! end to end and pins every
//! cell's canonical trace-event hash against the committed fixture
//! `tests/fixtures/golden_grid_smoke.txt`. The grid is executed at two
//! worker counts and the JSONL reports must be byte-identical — the
//! determinism contract the scenario matrix inherits from the runtime
//! engine.
//!
//! If a change *intentionally* alters training behavior, regenerate the
//! fixture by running this test and copying the `actual fixture block`
//! from the failure message into the fixture file, and call the change
//! out in the PR description.

use collapois_grid::report::{extract_raw_field, extract_str_field, top_level_keys};
use collapois_grid::runner::{run_grid, CellStatus, GridRunOptions};
use collapois_grid::schema::GridSpec;
use std::path::PathBuf;

fn repo_file(rel: &str) -> String {
    let path = format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("collapois-grid-matrix-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_to(spec: &GridSpec, name: &str, opts: &GridRunOptions) -> String {
    let out = tmp(name);
    let _ = std::fs::remove_file(&out);
    let outcome = run_grid(spec, &out, opts, |_, _| {}).unwrap();
    assert!(outcome.complete(), "grid did not finish: {outcome:?}");
    std::fs::read_to_string(&out).unwrap()
}

#[test]
fn smoke_grid_matches_golden_fixture_and_is_worker_count_invariant() {
    let spec = GridSpec::parse(&repo_file("scenarios/smoke.toml")).unwrap();
    let cells = spec.cells().unwrap();
    assert_eq!(cells.len(), 54, "the CI smoke matrix is 3x3x6");

    let w1 = run_to(
        &spec,
        "smoke_w1.jsonl",
        &GridRunOptions {
            workers: 1,
            ..GridRunOptions::default()
        },
    );
    let w2 = run_to(
        &spec,
        "smoke_w2.jsonl",
        &GridRunOptions {
            workers: 2,
            ..GridRunOptions::default()
        },
    );
    assert_eq!(
        w1, w2,
        "grid reports must be byte-identical across worker counts"
    );

    // Pin each cell's canonical event digest against the fixture.
    let actual: String = w1
        .lines()
        .map(|line| {
            format!(
                "{} {} {}\n",
                extract_str_field(line, "cell").expect("cell field"),
                extract_str_field(line, "event_hash").expect("event_hash field"),
                extract_raw_field(line, "event_count").expect("event_count field"),
            )
        })
        .collect();
    let expected = repo_file("tests/fixtures/golden_grid_smoke.txt");
    assert_eq!(
        actual, expected,
        "smoke-grid event hashes diverged from the golden fixture; if the \
         behavior change is intentional, replace the fixture with this \
         actual fixture block:\n{actual}"
    );
}

const TINY: &str = r#"
schema_version = 1
name = "kill-test"

[base]
clients = 8
samples_per_client = 12
alpha = 1.0
compromised_frac = 0.5
attack = "dpois"
rounds = 2
eval_every = 2
local_steps = 2
batch_size = 8
sample_rate = 0.5

[axes]
defense = ["none", "median"]
seed = [7, 8]
"#;

#[test]
fn killed_and_resumed_grid_concatenates_byte_identically() {
    let spec = GridSpec::parse(TINY).unwrap();
    assert_eq!(spec.cells().unwrap().len(), 4);

    // Reference: one uninterrupted run.
    let reference = run_to(&spec, "kill_ref.jsonl", &GridRunOptions::default());

    // Interrupted run: two cells, then a kill mid-write (torn third line),
    // then two resumes.
    let out = tmp("kill_resumed.jsonl");
    let _ = std::fs::remove_file(&out);
    let o1 = run_grid(
        &spec,
        &out,
        &GridRunOptions {
            limit: 2,
            ..GridRunOptions::default()
        },
        |_, _| {},
    )
    .unwrap();
    assert_eq!((o1.executed, o1.remaining), (2, 2));

    let partial = std::fs::read_to_string(&out).unwrap();
    std::fs::write(&out, format!("{partial}{{\"cell\":\"torn")).unwrap();

    let mut statuses = Vec::new();
    let o2 = run_grid(
        &spec,
        &out,
        &GridRunOptions {
            limit: 1,
            ..GridRunOptions::default()
        },
        |_, s| statuses.push(s),
    )
    .unwrap();
    assert_eq!((o2.skipped, o2.executed, o2.remaining), (2, 1, 1));
    assert_eq!(
        statuses,
        vec![
            CellStatus::Skipped,
            CellStatus::Skipped,
            CellStatus::Executed
        ]
    );
    let o3 = run_grid(&spec, &out, &GridRunOptions::default(), |_, _| {}).unwrap();
    assert_eq!((o3.skipped, o3.executed, o3.remaining), (3, 1, 0));

    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        reference,
        "kill + resume must concatenate to the uninterrupted bytes"
    );
}

#[test]
fn cell_reports_expose_one_schema_regardless_of_configuration() {
    // Two cells differing only in the aggregator; a faulted collapois sim
    // sweep would exercise the same contract, but the aggregator is the
    // axis the paper's Table I compares, so it is the one pinned here.
    let spec = GridSpec::parse(
        r#"
schema_version = 1
name = "comparability"

[base]
clients = 8
samples_per_client = 12
alpha = 1.0
compromised_frac = 0.5
attack = "label-flip"
rounds = 2
eval_every = 2
local_steps = 2
batch_size = 8
sample_rate = 0.5

[axes]
defense = ["none", "krum"]
"#,
    )
    .unwrap();
    let text = run_to(&spec, "comparability.jsonl", &GridRunOptions::default());
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    let keys0 = top_level_keys(lines[0]);
    let keys1 = top_level_keys(lines[1]);
    assert_eq!(
        keys0, keys1,
        "cells differing only in aggregator must emit identical report schemas"
    );
    assert!(!keys0.is_empty());
    assert_eq!(extract_str_field(lines[0], "defense").unwrap(), "none");
    assert_eq!(extract_str_field(lines[1], "defense").unwrap(), "krum");
    // Hash fields survive as full-precision hex strings.
    for line in &lines {
        let h = extract_str_field(line, "event_hash").unwrap();
        assert!(h.starts_with("0x") && h.len() == 18, "{h}");
        u64::from_str_radix(&h[2..], 16).unwrap();
    }
}
