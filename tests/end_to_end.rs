//! Cross-crate integration tests: full attack scenarios exercising data,
//! nn, fl and core together.

use collapois::core::scenario::{
    AttackKind, DatasetKind, DefenseKind, FlAlgo, Scenario, ScenarioConfig,
};

/// Small but meaningful configuration shared by the integration tests.
fn base(alpha: f64, frac: f64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::quick_image(alpha, frac);
    cfg.num_clients = 20;
    cfg.samples_per_client = 30;
    cfg.rounds = 20;
    cfg.eval_every = 20;
    cfg.sample_rate = 0.4;
    cfg.trojan.epochs = 30;
    cfg.seed = 77;
    cfg
}

#[test]
fn collapois_backdoors_undefended_fl() {
    let mut cfg = base(0.1, 0.1);
    cfg.attack = AttackKind::CollaPois;
    let report = Scenario::new(cfg).run();
    let last = report.final_round();
    assert!(
        last.attack_success_rate > 0.5,
        "CollaPois should backdoor undefended FL: SR={}",
        last.attack_success_rate
    );
    assert!(
        last.benign_accuracy > 0.4,
        "utility must not collapse: AC={}",
        last.benign_accuracy
    );
}

#[test]
fn collapois_outperforms_dpois_in_attack_sr() {
    let mut cp = base(0.1, 0.1);
    cp.attack = AttackKind::CollaPois;
    let mut dp = base(0.1, 0.1);
    dp.attack = AttackKind::DPois;
    let cp_sr = Scenario::new(cp).run().final_round().attack_success_rate;
    let dp_sr = Scenario::new(dp).run().final_round().attack_success_rate;
    assert!(
        cp_sr > dp_sr,
        "CollaPois ({cp_sr:.3}) should beat DPois ({dp_sr:.3}) at equal budget"
    );
}

#[test]
fn clean_training_has_no_backdoor() {
    let mut cfg = base(1.0, 0.0);
    cfg.attack = AttackKind::None;
    cfg.rounds = 25;
    let report = Scenario::new(cfg).run();
    let last = report.final_round();
    assert!(
        last.benign_accuracy > 0.5,
        "clean FL should learn: {}",
        last.benign_accuracy
    );
    // Without poisoning, the trigger should act like noise: SR stays near the
    // base rate of predicting class 0 (1/6) plus slack.
    assert!(
        last.attack_success_rate < 0.55,
        "no-attack SR should be low: {}",
        last.attack_success_rate
    );
}

#[test]
fn trojan_model_pulls_global_towards_it() {
    // Theorem 2's observable: under CollaPois the distance ||theta - X||
    // shrinks over training.
    let mut cfg = base(0.1, 0.1);
    cfg.attack = AttackKind::CollaPois;
    cfg.collect_updates = true;
    let report = Scenario::new(cfg).run();
    let x = &report.trojan.as_ref().expect("X").params;
    let first = report
        .records
        .iter()
        .find_map(|r| r.global_before.as_ref())
        .expect("snapshots collected");
    let d_start = collapois::stats::geometry::l2_distance(first, x);
    let d_end = collapois::stats::geometry::l2_distance(&report.final_global, x);
    assert!(
        d_end < d_start * 0.5,
        "global model must approach X: start={d_start:.3} end={d_end:.3}"
    );
}

#[test]
fn text_scenario_end_to_end() {
    let mut cfg = base(0.1, 0.1);
    cfg.dataset = DatasetKind::Text;
    cfg.attack = AttackKind::CollaPois;
    let report = Scenario::new(cfg).run();
    let last = report.final_round();
    assert!(
        last.benign_accuracy > 0.5,
        "text AC: {}",
        last.benign_accuracy
    );
    assert!(
        last.attack_success_rate > 0.5,
        "text SR: {}",
        last.attack_success_rate
    );
}

#[test]
fn krum_costs_utility_under_non_iid() {
    // The paper's defense finding: selection defenses pay Benign AC under
    // high diversity.
    let mut none = base(0.01, 0.1);
    none.attack = AttackKind::CollaPois;
    none.defense = DefenseKind::None;
    let mut krum = none.clone();
    krum.defense = DefenseKind::Krum;
    let ac_none = Scenario::new(none).run().final_round().benign_accuracy;
    let ac_krum = Scenario::new(krum).run().final_round().benign_accuracy;
    // Krum selects a single (possibly unrepresentative or malicious) update;
    // it must not beat plain averaging on utility in this regime.
    assert!(
        ac_krum <= ac_none + 0.1,
        "krum AC {ac_krum:.3} vs fedavg AC {ac_none:.3}"
    );
}

#[test]
fn personalized_algorithms_produce_distinct_dynamics() {
    let mut fedavg = base(0.1, 0.1);
    fedavg.attack = AttackKind::CollaPois;
    let mut feddc = fedavg.clone();
    feddc.algo = FlAlgo::FedDc;
    let a = Scenario::new(fedavg).run();
    let b = Scenario::new(feddc).run();
    assert_ne!(
        a.final_global, b.final_global,
        "different FL algorithms must yield different models"
    );
}

#[test]
fn cluster_reports_cover_all_benign_clients() {
    let mut cfg = base(0.1, 0.1);
    cfg.attack = AttackKind::CollaPois;
    let report = Scenario::new(cfg).run();
    let clustered: usize = report.clusters.iter().map(|c| c.clients.len()).sum();
    assert_eq!(clustered, report.clients.len());
    // Cluster SR ordering: the 1% cluster must not have lower SR than the
    // bottom cluster (Eq. 8 sorts by score = AC + SR).
    let first = report.clusters.first().expect("clusters");
    let last = report.clusters.last().expect("clusters");
    assert!(first.attack_sr + first.benign_ac >= last.attack_sr + last.benign_ac);
}

#[test]
fn reports_are_reproducible() {
    let mut cfg = base(0.1, 0.1);
    cfg.attack = AttackKind::CollaPois;
    let a = Scenario::new(cfg.clone()).run();
    let b = Scenario::new(cfg).run();
    assert_eq!(a.final_global, b.final_global);
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.benign_accuracy, rb.benign_accuracy);
        assert_eq!(ra.attack_success_rate, rb.attack_success_rate);
    }
}
