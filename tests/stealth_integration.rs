//! Integration tests for the stealth pipeline: CollaPois' stealth
//! configuration passes the statistical battery while MRepl's boosted
//! updates fail it, on real simulation traces.

use collapois::core::analysis::split_updates;
use collapois::core::collapois::CollaPoisConfig;
use collapois::core::scenario::{AttackKind, Scenario, ScenarioConfig};
use collapois::core::stealth::stealth_battery;

type GradientGroups = (Vec<Vec<f32>>, Vec<Vec<f32>>, Vec<Vec<f32>>);

fn run(attack: AttackKind, stealth: bool) -> GradientGroups {
    let mut cfg = ScenarioConfig::quick_image(0.1, 0.15);
    cfg.num_clients = 20;
    cfg.samples_per_client = 30;
    cfg.rounds = 24;
    cfg.eval_every = 24;
    cfg.sample_rate = 0.5;
    cfg.trojan.epochs = 25;
    cfg.attack = attack;
    if stealth {
        cfg.collapois = CollaPoisConfig {
            psi_low: 0.95,
            psi_high: 0.99,
            clip_bound: Some(0.8),
            min_norm: None,
        };
    }
    cfg.collect_updates = true;
    cfg.seed = 123;
    let report = Scenario::new(cfg).run();
    let mut background = Vec::new();
    let mut benign = Vec::new();
    let mut malicious = Vec::new();
    for r in &report.records {
        let Some(updates) = &r.updates else { continue };
        let (b, m) = split_updates(updates, &report.compromised);
        if r.round % 2 == 0 {
            background.extend(b.iter().map(|s| s.to_vec()));
        } else {
            benign.extend(b.iter().map(|s| s.to_vec()));
            malicious.extend(m.iter().map(|s| s.to_vec()));
        }
    }
    (benign, malicious, background)
}

fn refs(v: &[Vec<f32>]) -> Vec<&[f32]> {
    v.iter().map(|x| x.as_slice()).collect()
}

#[test]
fn collapois_stealth_config_blends_magnitudes() {
    let (benign, malicious, background) = run(AttackKind::CollaPois, true);
    assert!(
        malicious.len() >= 2,
        "need malicious samples: {}",
        malicious.len()
    );
    let report =
        stealth_battery(&refs(&benign), &refs(&malicious), &refs(&background)).expect("battery");
    // The clipped, narrow-psi configuration keeps malicious magnitudes within
    // the benign range: the 3-sigma rule flags (almost) nothing.
    assert!(
        report.three_sigma_rate <= 0.10,
        "3-sigma flag rate too high: {}",
        report.three_sigma_rate
    );
}

#[test]
fn mrepl_boost_is_flagged_by_magnitude() {
    let (benign, malicious, background) = run(AttackKind::MRepl, false);
    assert!(malicious.len() >= 2, "need malicious samples");
    let report =
        stealth_battery(&refs(&benign), &refs(&malicious), &refs(&background)).expect("battery");
    // MRepl's boosted updates are magnitude outliers — the opposite of
    // CollaPois' stealth property.
    assert!(
        report.three_sigma_rate > 0.5 || report.magnitude_t_test.rejects_at(0.01),
        "MRepl should be detectable: 3sigma={}, t={:?}",
        report.three_sigma_rate,
        report.magnitude_t_test
    );
}

#[test]
fn psi_history_matches_configured_range() {
    let mut cfg = ScenarioConfig::quick_image(0.1, 0.15);
    cfg.num_clients = 16;
    cfg.samples_per_client = 25;
    cfg.rounds = 10;
    cfg.eval_every = 10;
    cfg.sample_rate = 0.5;
    cfg.trojan.epochs = 15;
    cfg.attack = AttackKind::CollaPois;
    cfg.collapois = CollaPoisConfig {
        psi_low: 0.92,
        psi_high: 0.97,
        clip_bound: None,
        min_norm: None,
    };
    cfg.seed = 5;
    // Run via the adversary directly to inspect psi draws.
    use collapois::core::collapois::CollaPois;
    use rand::SeedableRng;
    let mut adv = CollaPois::new(vec![0], vec![1.0; 64], cfg.collapois);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    for _ in 0..100 {
        let _ = adv.craft(&vec![0.0; 64], &mut rng);
    }
    assert_eq!(adv.psi_history().len(), 100);
    assert!(adv.psi_history().iter().all(|&p| (0.92..0.97).contains(&p)));
}
