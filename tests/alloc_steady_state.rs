//! Proves the zero-allocation steady-state contract of the training inner
//! loop: after one warm-up pass has grown the [`ClientScratch`] arena to its
//! working size, further local-training passes perform **zero** heap
//! allocations.
//!
//! The test installs a counting `#[global_allocator]` (the same mechanism as
//! the `bench-alloc` feature of the `rounds_throughput` benchmark) and must
//! live alone in its own test binary: any test running concurrently in the
//! same process would pollute the counters. Keep this file single-test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation routed through the global allocator.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use collapois_data::sample::Dataset;
use collapois_fl::client::local_sgd_delta_prox_into;
use collapois_fl::config::FlConfig;
use collapois_fl::ClientScratch;
use collapois_nn::zoo::ModelSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_data() -> Dataset {
    let mut ds = Dataset::empty(&[8], 4);
    for i in 0..64 {
        let c = i % 4;
        let mut row = [0.0f32; 8];
        row[c] = 1.0;
        row[c + 4] = 0.5;
        ds.push(&row, c);
    }
    ds
}

#[test]
fn training_inner_loop_allocates_nothing_after_warmup() {
    let spec = ModelSpec::mlp(8, &[16, 8], 4);
    let mut cfg = FlConfig::quick(spec.clone());
    cfg.local_steps = 4;
    cfg.batch_size = 16;
    let mut rng = StdRng::seed_from_u64(7);
    let model = spec.build(&mut rng);
    let global = model.params();
    let data = toy_data();
    let mut scratch = ClientScratch::for_model(&model);

    // Warm-up: grows every arena buffer (workspace activations, gradient
    // ping-pong, parameter views, minibatch tensors, delta) to working size.
    let mut train_rng = StdRng::seed_from_u64(11);
    local_sgd_delta_prox_into(&mut train_rng, &mut scratch, &global, &data, &cfg, 0.01);

    // Steady state: the arena is at size; repeated passes must not touch
    // the allocator at all.
    let count_before = ALLOC_COUNT.load(Ordering::SeqCst);
    let bytes_before = ALLOC_BYTES.load(Ordering::SeqCst);
    for round in 0..8u64 {
        let mut train_rng = StdRng::seed_from_u64(100 + round);
        local_sgd_delta_prox_into(&mut train_rng, &mut scratch, &global, &data, &cfg, 0.01);
    }
    let count_after = ALLOC_COUNT.load(Ordering::SeqCst);
    let bytes_after = ALLOC_BYTES.load(Ordering::SeqCst);

    assert_eq!(
        count_after - count_before,
        0,
        "steady-state training performed {} allocations ({} bytes)",
        count_after - count_before,
        bytes_after - bytes_before,
    );
}
