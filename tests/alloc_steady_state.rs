//! Proves the zero-allocation steady-state contract of the training hot
//! paths: after warm-up has grown every arena to its working size, further
//! passes perform **zero** heap allocations — both for a single client's
//! local-training inner loop and for the pooled multi-worker fan-out the
//! server's round loop uses.
//!
//! The test installs a counting `#[global_allocator]` (the same mechanism as
//! the `bench-alloc` feature of the `rounds_throughput` benchmark) and runs
//! with `harness = false`: the libtest harness spawns worker threads whose
//! own bookkeeping allocations would pollute the process-global counters and
//! make the zero assertion flaky. With no harness, the only threads are the
//! ones the worker pool owns — and those must not allocate in steady state
//! either, which is exactly the contract under test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation routed through the global allocator.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use collapois_data::sample::Dataset;
use collapois_fl::client::local_sgd_delta_prox_into;
use collapois_fl::config::FlConfig;
use collapois_fl::monitor::ShiftDetector;
use collapois_fl::ClientScratch;
use collapois_nn::zoo::ModelSpec;
use collapois_runtime::pool::{WorkerArenas, WorkerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_data() -> Dataset {
    let mut ds = Dataset::empty(&[8], 4);
    for i in 0..64 {
        let c = i % 4;
        let mut row = [0.0f32; 8];
        row[c] = 1.0;
        row[c + 4] = 0.5;
        ds.push(&row, c);
    }
    ds
}

fn assert_zero(label: &str, counts: (u64, u64)) {
    let (count, bytes) = counts;
    assert_eq!(
        count, 0,
        "steady-state {label} performed {count} allocations ({bytes} bytes)"
    );
    println!("alloc_steady_state: {label} ok");
}

/// Runs `f` and returns (allocations, bytes) it performed.
fn counting<F: FnMut()>(mut f: F) -> (u64, u64) {
    let count_before = ALLOC_COUNT.load(Ordering::SeqCst);
    let bytes_before = ALLOC_BYTES.load(Ordering::SeqCst);
    f();
    let count_after = ALLOC_COUNT.load(Ordering::SeqCst);
    let bytes_after = ALLOC_BYTES.load(Ordering::SeqCst);
    (count_after - count_before, bytes_after - bytes_before)
}

/// One client's local-training inner loop: after one warm-up pass has grown
/// the [`ClientScratch`] arena, repeated passes must not touch the allocator.
fn serial_training_inner_loop() {
    let spec = ModelSpec::mlp(8, &[16, 8], 4);
    let mut cfg = FlConfig::quick(spec.clone());
    cfg.local_steps = 4;
    cfg.batch_size = 16;
    let mut rng = StdRng::seed_from_u64(7);
    let model = spec.build(&mut rng);
    let global = model.params();
    let data = toy_data();
    let mut scratch = ClientScratch::for_model(&model);

    // Warm-up: grows every arena buffer (workspace activations, gradient
    // ping-pong, parameter views, minibatch tensors, delta) to working size.
    let mut train_rng = StdRng::seed_from_u64(11);
    local_sgd_delta_prox_into(&mut train_rng, &mut scratch, &global, &data, &cfg, 0.01);

    let counts = counting(|| {
        for round in 0..8u64 {
            let mut train_rng = StdRng::seed_from_u64(100 + round);
            local_sgd_delta_prox_into(&mut train_rng, &mut scratch, &global, &data, &cfg, 0.01);
        }
    });
    assert_zero("serial training", counts);
}

/// The server's multi-worker fan-out shape at `workers = 4`: recycled
/// `(client, delta)` jobs dispatched through `map_with_arena_into` with one
/// persistent [`ClientScratch`] per lane. Once the job/outcome buffers and
/// every lane arena are at size, whole dispatch-train-barrier passes must
/// perform zero allocations on *any* thread — dispatcher or helper lane.
fn pooled_fanout_at_four_workers() {
    const CLIENTS: usize = 12;
    let spec = ModelSpec::mlp(8, &[16, 8], 4);
    let mut cfg = FlConfig::quick(spec.clone());
    cfg.local_steps = 2;
    cfg.batch_size = 16;
    let mut rng = StdRng::seed_from_u64(7);
    let model = spec.build(&mut rng);
    let global = model.params();
    let data = toy_data();

    let pool = WorkerPool::new(4);
    let mut arenas: WorkerArenas<ClientScratch> = WorkerArenas::new();
    let mut jobs: Vec<(usize, Vec<f32>)> = (0..CLIENTS).map(|cid| (cid, Vec::new())).collect();
    let mut out: Vec<(usize, Vec<f32>)> = Vec::new();

    let pass = |arenas: &mut WorkerArenas<ClientScratch>,
                jobs: &mut Vec<(usize, Vec<f32>)>,
                out: &mut Vec<(usize, Vec<f32>)>| {
        pool.map_with_arena_into(
            arenas,
            jobs,
            out,
            || ClientScratch::for_model(&model),
            |_, (cid, buf), scratch| {
                scratch.delta = buf;
                let mut train_rng = StdRng::seed_from_u64(200 + cid as u64);
                local_sgd_delta_prox_into(&mut train_rng, scratch, &global, &data, &cfg, 0.01);
                (cid, std::mem::take(&mut scratch.delta))
            },
        );
        // Outputs carry the delta buffers; swapping hands them back as the
        // next pass's jobs, so capacity is recycled end to end.
        std::mem::swap(jobs, out);
    };

    // Warm-up: lane arenas are built on first dispatch, delta buffers grow
    // to model size, and the outcome vector reaches its high-water mark.
    // A second pass settles any lazily-grown per-lane state.
    pass(&mut arenas, &mut jobs, &mut out);
    pass(&mut arenas, &mut jobs, &mut out);

    // Work-stealing makes lane participation schedule-dependent: on a
    // loaded host the dispatcher can steal every job, leaving a helper
    // thread's scratch — and its 128 KiB thread-local kernel pack buffer —
    // cold until some later (counted) pass. The pinned warm-up dispatch
    // trains once on every lane's own thread, so steady state is
    // schedule-independent.
    pool.warm_lanes(
        &mut arenas,
        || ClientScratch::for_model(&model),
        |_, scratch| {
            let mut train_rng = StdRng::seed_from_u64(300);
            local_sgd_delta_prox_into(&mut train_rng, scratch, &global, &data, &cfg, 0.01);
        },
    );

    let counts = counting(|| {
        for _ in 0..8 {
            pass(&mut arenas, &mut jobs, &mut out);
        }
    });
    assert_zero("workers=4 fan-out", counts);
}

/// The shift detector's `observe` call, which runs inside the round loop
/// when monitoring is enabled: once the ring buffers, the previous-model
/// copy and the median/MAD sort scratch are at size, alert-free rounds must
/// not touch the allocator.
fn monitor_observe_steady_state() {
    const DIM: usize = 512;
    let mut det = ShiftDetector::default_paper();
    let mut global = vec![0.0f32; DIM];

    // Warm-up: first observation clones the model, later ones fill the
    // displacement/utility rings past the window and size the sort scratch.
    for t in 0..10u32 {
        for (i, g) in global.iter_mut().enumerate() {
            *g = 1.0 / (t as f32 + 1.0) + 0.003 * ((i % 5) as f32);
        }
        det.observe(Some(&global), Some(0.5 + 0.01 * t as f64));
    }

    let counts = counting(|| {
        for t in 10..40u32 {
            for (i, g) in global.iter_mut().enumerate() {
                *g = 1.0 / (t as f32 + 1.0) + 0.003 * ((i % 5) as f32);
            }
            let alert = det.observe(Some(&global), Some(0.5 + 0.01 * t as f64));
            assert!(alert.is_none(), "smooth series must not alert");
        }
    });
    assert_zero("monitor observe", counts);
}

fn main() {
    serial_training_inner_loop();
    pooled_fanout_at_four_workers();
    monitor_observe_steady_state();
}
