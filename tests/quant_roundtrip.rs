//! Property tests for the deterministic client-update transport codecs
//! (`collapois_fl::quant`) and the worker-count invariance of quantized
//! end-to-end runs.
//!
//! The codec contract: encode/decode is deterministic round-to-nearest-even
//! with a per-tensor scale, and the decoded values are *fixed points* of the
//! codec — a second round-trip is the bitwise identity. That idempotence is
//! what lets the server apply the round-trip once per accepted update and
//! still present every aggregator with exactly the bytes a real receiver
//! would reconstruct, independent of how clients are fanned over workers.

use collapois::core::scenario::{
    AttackKind, DefenseKind, Quantization, RunOptions, Scenario, ScenarioConfig,
};
use collapois::fl::quant::{
    decode_i8, encode_i8, f16_bits_to_f32, f32_to_f16_bits, int8_scale, quantize_i8,
};
use proptest::prelude::*;

/// Reshapes a uniformly drawn tensor into one of several magnitude
/// regimes (the vendored proptest has no `prop_oneof`): large, unit,
/// subnormal-adjacent tiny, and with exact zeros mixed in.
fn shape_tensor(mut xs: Vec<f32>, mode: usize) -> Vec<f32> {
    match mode {
        1 => xs.iter_mut().for_each(|v| *v *= 1e-10),
        2 => xs.iter_mut().for_each(|v| *v /= 1e4),
        3 => {
            let n = xs.len();
            xs[0] = 0.0;
            xs[n / 2] = -0.0;
        }
        _ => {}
    }
    xs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode is idempotent: round-tripping a tensor twice gives
    /// bitwise the same values as round-tripping it once, for both lossy
    /// codecs (`F32` is the identity by definition).
    #[test]
    fn roundtrip_is_idempotent(
        raw in proptest::collection::vec(-1e4f32..1e4f32, 1..200),
        mode in 0usize..4,
        codec_idx in 0usize..2,
    ) {
        let xs = shape_tensor(raw, mode);
        let codec = [Quantization::F16, Quantization::Int8][codec_idx];
        let mut once = xs.clone();
        codec.roundtrip_inplace(&mut once);
        let mut twice = once.clone();
        codec.roundtrip_inplace(&mut twice);
        for (i, (a, b)) in once.iter().zip(&twice).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "codec {:?} not idempotent at [{}]: {} vs {}", codec, i, a, b
            );
        }
    }

    /// The f16 decode of any encoded finite value is exactly representable:
    /// re-encoding it reproduces the same bit pattern (no drift).
    #[test]
    fn f16_decode_is_a_fixed_point(x in -1e5f32..1e5, mode in 0usize..4) {
        let x = shape_tensor(vec![x, x], mode)[0];
        let bits = f32_to_f16_bits(x);
        let back = f16_bits_to_f32(bits);
        prop_assert_eq!(f32_to_f16_bits(back), bits);
    }

    /// int8 decode is a fixed point of the encoder at the same scale.
    #[test]
    fn int8_decode_is_a_fixed_point(
        raw in proptest::collection::vec(-1e4f32..1e4f32, 1..100),
        mode in 0usize..4,
    ) {
        let xs = shape_tensor(raw, mode);
        let mut codes = Vec::new();
        if let Some(scale) = encode_i8(&xs, &mut codes) {
            let mut decoded = vec![0.0f32; xs.len()];
            decode_i8(&codes, scale, &mut decoded);
            for (i, v) in decoded.iter().enumerate() {
                prop_assert_eq!(
                    quantize_i8(*v, scale), codes[i],
                    "re-encode drift at [{}]", i
                );
            }
        }
    }
}

/// Round-to-nearest-even at the representable midpoints, pinned exactly.
#[test]
fn rne_tie_cases() {
    // f16 has 10 mantissa bits: in [1, 2) the spacing is 2^-10, so
    // 1 + k·2^-11 for odd k are exact ties. Ties go to the even mantissa.
    assert_eq!(f32_to_f16_bits(1.0 + f32::powi(2.0, -11)), 0x3C00); // down to 1.0
    assert_eq!(f32_to_f16_bits(1.0 + 3.0 * f32::powi(2.0, -11)), 0x3C02); // up to even
    assert_eq!(f32_to_f16_bits(-(1.0 + f32::powi(2.0, -11))), 0xBC00);

    // int8 at scale 1: half-integers tie to the even code.
    assert_eq!(quantize_i8(0.5, 1.0), 0);
    assert_eq!(quantize_i8(1.5, 1.0), 2);
    assert_eq!(quantize_i8(2.5, 1.0), 2);
    assert_eq!(quantize_i8(-0.5, 1.0), 0);
    assert_eq!(quantize_i8(-1.5, 1.0), -2);

    // The int8 scale maps the tensor max-abs onto the symmetric code 127.
    let xs = [0.5f32, -2.0, 1.0];
    let scale = int8_scale(&xs).unwrap();
    assert_eq!(quantize_i8(-2.0, scale), -127);
}

/// A quantized golden run is worker-count invariant: the codec round-trip
/// is a pure per-client function applied before the finite-norm gate, so
/// the final global parameters are bitwise identical at workers 1, 2 and 4
/// — and genuinely different from the exact-f32 run (the codec is not a
/// silent no-op).
#[test]
fn quantized_golden_run_is_worker_count_invariant() {
    let mut cfg = ScenarioConfig::quick_image(1.0, 0.05);
    cfg.num_clients = 10;
    cfg.samples_per_client = 16;
    cfg.rounds = 3;
    cfg.eval_every = 3;
    cfg.sample_rate = 0.5;
    cfg.trojan.epochs = 4;
    cfg.attack = AttackKind::CollaPois;
    cfg.defense = DefenseKind::NormBound;

    let run = |quant: Quantization, workers: usize| -> Vec<u32> {
        let mut c = cfg.clone();
        c.quantization = quant;
        let report = Scenario::new(c).run_with(&RunOptions {
            workers,
            ..RunOptions::default()
        });
        report.final_global.iter().map(|v| v.to_bits()).collect()
    };

    let exact = run(Quantization::F32, 1);
    for quant in [Quantization::F16, Quantization::Int8] {
        let w1 = run(quant, 1);
        assert_eq!(w1, run(quant, 2), "{quant:?} diverged at workers=2");
        assert_eq!(w1, run(quant, 4), "{quant:?} diverged at workers=4");
        assert_ne!(
            w1, exact,
            "{quant:?} round-trip left the run bitwise identical to f32 — \
             the codec never engaged"
        );
    }
}
