//! Differential tests pinning the blocked kernels to the naive reference
//! oracle (`collapois::nn::kernels::{blocked, reference}`), and the
//! explicit-SIMD tier to the blocked kernels.
//!
//! All implementations are always compiled, so this suite compares them
//! directly regardless of which one the `reference` cargo feature or the
//! process-wide `COLLAPOIS_KERNEL_TIER` choice routes the dispatchers to.
//! CI runs it in debug and `--release` to catch optimization-level-
//! dependent floating-point differences, and the `kernel-tier` CI job runs
//! the whole tier-1 suite under both `COLLAPOIS_KERNEL_TIER` values so the
//! env-override path itself cannot rot (the override is read once per
//! process, so it cannot be toggled from inside a single test binary).
//!
//! # Tolerance policy
//!
//! * **Exact (bitwise)** — matmul family, element-wise ops (`axpy`,
//!   `scale`, the `acc_*` accumulators), order statistics
//!   (`trimmed_mean_inplace`, `median_inplace`), `softmax_rows` and the
//!   fused `softmax_xent`: the blocked kernels preserve the reference's
//!   per-element floating-point reduction order (a single `f32`
//!   accumulator sweeping `k` in ascending order per output element;
//!   ascending sorted-order sums for the order statistics), so any
//!   difference at all is a bug.
//! * **1e-12 relative** — `dot`, `sq_l2_norm`, `sq_l2_distance`,
//!   `pairwise_sq_distances`: the blocked versions split the `f64` sum
//!   into 4 independent chains combined by a fixed tree, which is
//!   deterministic but reassociated, so results may differ from the
//!   single-chain reference by a few `f64` ulps. 1e-12 relative is ~4
//!   orders of magnitude above f64 epsilon yet far below anything the
//!   `f32` inputs can resolve.
//! * **Exact (bitwise), simd vs blocked** — every function, including the
//!   reassociated `f64` reductions: the SIMD tier's 4 `f64` lanes are the
//!   blocked tier's 4 accumulator chains (same elements, same order, same
//!   fixed combine tree), and no FMA is used, so the tiers agree bit for
//!   bit and golden fixtures are tier-invariant.

use collapois::nn::kernels::{blocked, reference, simd};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

fn assert_rel_close(a: f64, b: f64, what: &str) {
    let denom = a.abs().max(b.abs()).max(1.0);
    assert!(
        ((a - b) / denom).abs() <= 1e-12,
        "{what}: blocked={a} reference={b}"
    );
}

/// SIMD vs blocked at the same tile-boundary shapes (covers the 8-lane
/// remainder paths at every `ncb % 8` residue), plus the dispatcher-level
/// tier checks: whatever the process-wide tier is, the public dispatchers
/// must agree bitwise with the module that tier names — so golden fixtures
/// cannot depend on which tier a host selects.
#[test]
fn simd_tier_bitwise_at_tile_boundaries_and_dispatch_agrees() {
    use collapois::nn::kernels::{self, active_tier, KernelTier};

    // The env override is read once per process: when CI pins it, the
    // decision must match; unset, detection must have picked *something*.
    match std::env::var("COLLAPOIS_KERNEL_TIER").ok().as_deref() {
        Some("scalar") => assert_eq!(active_tier(), KernelTier::Scalar),
        Some("simd") => assert_eq!(active_tier(), KernelTier::Simd),
        _ => {
            let t = active_tier();
            assert!(t == KernelTier::Scalar || t == KernelTier::Simd);
        }
    }

    let mut rng = StdRng::seed_from_u64(11);
    for &(m, k, n) in &[(1, 1, 1), (3, 127, 255), (3, 129, 257), (8, 300, 513)] {
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let mut c_simd = vec![0.0f32; m * n];
        let mut c_blk = vec![0.0f32; m * n];
        let mut c_disp = vec![0.0f32; m * n];
        simd::matmul(&a, &b, &mut c_simd, m, k, n);
        blocked::matmul(&a, &b, &mut c_blk, m, k, n);
        kernels::matmul(&a, &b, &mut c_disp, m, k, n);
        assert_eq!(c_simd, c_blk, "simd matmul {m}x{k}x{n}");
        if !kernels::USING_REFERENCE {
            // Either tier must produce the identical C.
            assert_eq!(c_disp, c_blk, "dispatched matmul {m}x{k}x{n}");
        }

        let bt = fill(&mut rng, n * k);
        c_simd.fill(0.0);
        c_blk.fill(0.0);
        simd::matmul_transb(&a, &bt, &mut c_simd, m, k, n);
        blocked::matmul_transb(&a, &bt, &mut c_blk, m, k, n);
        assert_eq!(c_simd, c_blk, "simd matmul_transb {m}x{k}x{n}");

        let (p, q) = (k, n);
        let a2 = fill(&mut rng, m * p);
        let b2 = fill(&mut rng, m * q);
        let init = fill(&mut rng, p * q);
        let mut acc_simd = init.clone();
        let mut acc_blk = init;
        simd::matmul_transa_acc(&a2, &b2, &mut acc_simd, m, p, q);
        blocked::matmul_transa_acc(&a2, &b2, &mut acc_blk, m, p, q);
        assert_eq!(acc_simd, acc_blk, "simd matmul_transa_acc {m}x{p}x{q}");
    }
}

/// Dimensions straddling the KC=128 / NC=256 tile boundaries exercise every
/// packing remainder path; checked exhaustively outside proptest.
#[test]
fn matmul_family_bitwise_at_tile_boundaries() {
    let mut rng = StdRng::seed_from_u64(7);
    for &(m, k, n) in &[
        (1, 1, 1),
        (3, 127, 255),
        (3, 128, 256),
        (3, 129, 257),
        (2, 256, 300),
        (8, 300, 513),
    ] {
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let mut c_blk = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        blocked::matmul(&a, &b, &mut c_blk, m, k, n);
        reference::matmul(&a, &b, &mut c_ref, m, k, n);
        assert_eq!(c_blk, c_ref, "matmul {m}x{k}x{n}");

        // Bᵀ stored [n, k].
        let bt = fill(&mut rng, n * k);
        c_blk.fill(0.0);
        c_ref.fill(0.0);
        blocked::matmul_transb(&a, &bt, &mut c_blk, m, k, n);
        reference::matmul_transb(&a, &bt, &mut c_ref, m, k, n);
        assert_eq!(c_blk, c_ref, "matmul_transb {m}x{k}x{n}");

        // C += Aᵀ·B with A: [m, p], B: [m, q] — reuse k as p, n as q.
        let (p, q) = (k, n);
        let a2 = fill(&mut rng, m * p);
        let b2 = fill(&mut rng, m * q);
        let init = fill(&mut rng, p * q);
        let mut acc_blk = init.clone();
        let mut acc_ref = init;
        blocked::matmul_transa_acc(&a2, &b2, &mut acc_blk, m, p, q);
        reference::matmul_transa_acc(&a2, &b2, &mut acc_ref, m, p, q);
        assert_eq!(acc_blk, acc_ref, "matmul_transa_acc {m}x{p}x{q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked matmul is bitwise identical to the reference for arbitrary
    /// small shapes (the boundary test above covers the large tiles).
    #[test]
    fn matmul_bitwise(seed in 0u64..10_000, m in 1usize..12, k in 1usize..48, n in 1usize..48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let mut c_blk = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        blocked::matmul(&a, &b, &mut c_blk, m, k, n);
        reference::matmul(&a, &b, &mut c_ref, m, k, n);
        prop_assert_eq!(c_blk, c_ref);
    }

    /// Same for the transposed-B (dense forward) variant.
    #[test]
    fn matmul_transb_bitwise(seed in 0u64..10_000, m in 1usize..12, k in 1usize..48, n in 1usize..48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let bt = fill(&mut rng, n * k);
        let mut c_blk = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        blocked::matmul_transb(&a, &bt, &mut c_blk, m, k, n);
        reference::matmul_transb(&a, &bt, &mut c_ref, m, k, n);
        prop_assert_eq!(c_blk, c_ref);
    }

    /// Same for the accumulating Aᵀ·B (weight-gradient) variant, including
    /// a non-zero initial accumulator.
    #[test]
    fn matmul_transa_acc_bitwise(seed in 0u64..10_000, m in 1usize..12, p in 1usize..32, q in 1usize..32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * p);
        let b = fill(&mut rng, m * q);
        let init = fill(&mut rng, p * q);
        let mut c_blk = init.clone();
        let mut c_ref = init;
        blocked::matmul_transa_acc(&a, &b, &mut c_blk, m, p, q);
        reference::matmul_transa_acc(&a, &b, &mut c_ref, m, p, q);
        prop_assert_eq!(c_blk, c_ref);
    }

    /// Element-wise ops are trivially order-preserving: exact equality.
    #[test]
    fn elementwise_ops_bitwise(seed in 0u64..10_000, len in 1usize..400, alpha in -3.0f32..3.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = fill(&mut rng, len);
        let y0 = fill(&mut rng, len);

        let mut y_blk = y0.clone();
        let mut y_ref = y0.clone();
        blocked::axpy(&mut y_blk, alpha, &x);
        reference::axpy(&mut y_ref, alpha, &x);
        prop_assert_eq!(&y_blk, &y_ref);

        blocked::scale(&mut y_blk, alpha);
        reference::scale(&mut y_ref, alpha);
        prop_assert_eq!(&y_blk, &y_ref);

        let acc0: Vec<f64> = y0.iter().map(|&v| v as f64).collect();
        let mut a_blk = acc0.clone();
        let mut a_ref = acc0;
        blocked::acc_add(&mut a_blk, &x);
        reference::acc_add(&mut a_ref, &x);
        prop_assert_eq!(&a_blk, &a_ref);
        blocked::acc_scaled(&mut a_blk, &x, alpha as f64);
        reference::acc_scaled(&mut a_ref, &x, alpha as f64);
        prop_assert_eq!(&a_blk, &a_ref);
        blocked::acc_scaled_f32(&mut a_blk, &x, alpha);
        reference::acc_scaled_f32(&mut a_ref, &x, alpha);
        prop_assert_eq!(a_blk, a_ref);
    }

    /// Softmax rows and the fused softmax+cross-entropy match the two-pass
    /// reference bitwise (loss, gradient, and correct-count).
    #[test]
    fn softmax_paths_bitwise(seed in 0u64..10_000, n in 1usize..16, k in 2usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = fill(&mut rng, n * k);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..k)).collect();

        let mut s_blk = logits.clone();
        let mut s_ref = logits.clone();
        blocked::softmax_rows(&mut s_blk, n, k);
        reference::softmax_rows(&mut s_ref, n, k);
        prop_assert_eq!(s_blk, s_ref);

        let mut g_blk = vec![0.0f32; n * k];
        let mut g_ref = vec![0.0f32; n * k];
        let (l_blk, c_blk) = blocked::softmax_xent(&logits, &labels, n, k, &mut g_blk);
        let (l_ref, c_ref) = reference::softmax_xent(&logits, &labels, n, k, &mut g_ref);
        prop_assert_eq!(g_blk, g_ref);
        prop_assert_eq!(l_blk, l_ref);
        prop_assert_eq!(c_blk, c_ref);
    }

    /// Partial-select order statistics equal the full-sort reference bitwise
    /// and are invariant to input order (both sum kept values ascending).
    /// The size range straddles the blocked kernel's small-`n` sort cutoff
    /// (512) so both code paths are exercised.
    #[test]
    fn order_statistics_bitwise(seed in 0u64..10_000, n in 1usize..700) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vals = fill(&mut rng, n);
        let trim = rng.gen_range(0usize..=(n.saturating_sub(1)) / 2);

        let mut b_blk = vals.clone();
        let mut b_ref = vals.clone();
        let tm_blk = blocked::trimmed_mean_inplace(&mut b_blk, trim);
        let tm_ref = reference::trimmed_mean_inplace(&mut b_ref, trim);
        prop_assert_eq!(tm_blk, tm_ref);

        let mut b_blk = vals.clone();
        let mut b_ref = vals.clone();
        let md_blk = blocked::median_inplace(&mut b_blk);
        let md_ref = reference::median_inplace(&mut b_ref);
        prop_assert_eq!(md_blk, md_ref);

        // Reversing the input must not change either statistic.
        let mut rev: Vec<f32> = vals.clone();
        rev.reverse();
        let mut r1 = rev.clone();
        prop_assert_eq!(blocked::trimmed_mean_inplace(&mut r1, trim), tm_blk);
        let mut r2 = rev;
        prop_assert_eq!(blocked::median_inplace(&mut r2), md_blk);
    }

    /// Reassociated f64 reductions: within 1e-12 relative of the
    /// single-chain reference (see the tolerance policy above).
    #[test]
    fn f64_reductions_within_tolerance(seed in 0u64..10_000, len in 1usize..600) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, len);
        let b = fill(&mut rng, len);
        assert_rel_close(blocked::dot(&a, &b), reference::dot(&a, &b), "dot");
        assert_rel_close(blocked::sq_l2_norm(&a), reference::sq_l2_norm(&a), "sq_l2_norm");
        assert_rel_close(
            blocked::sq_l2_distance(&a, &b),
            reference::sq_l2_distance(&a, &b),
            "sq_l2_distance",
        );
    }

    /// Pairwise distance matrices: symmetric, zero diagonal, each entry
    /// within tolerance of the all-ordered-pairs reference.
    #[test]
    fn pairwise_distances_within_tolerance(seed in 0u64..10_000, n in 1usize..8, dim in 1usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vs: Vec<Vec<f32>> = (0..n).map(|_| fill(&mut rng, dim)).collect();
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let d_blk = blocked::pairwise_sq_distances(&refs);
        let d_ref = reference::pairwise_sq_distances(&refs);
        prop_assert_eq!(d_blk.len(), n * n);
        for i in 0..n {
            prop_assert_eq!(d_blk[i * n + i], 0.0);
            for j in 0..n {
                prop_assert_eq!(d_blk[i * n + j], d_blk[j * n + i]);
                assert_rel_close(d_blk[i * n + j], d_ref[i * n + j], "pairwise");
            }
        }
    }

    /// The SIMD tier is bitwise identical to the blocked tier on the whole
    /// matmul family (8-lane microkernels preserve the per-element `k`
    /// order; no FMA).
    #[test]
    fn simd_matmul_family_bitwise_vs_blocked(seed in 0u64..10_000, m in 1usize..12, k in 1usize..48, n in 1usize..48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let mut c_simd = vec![0.0f32; m * n];
        let mut c_blk = vec![0.0f32; m * n];
        simd::matmul(&a, &b, &mut c_simd, m, k, n);
        blocked::matmul(&a, &b, &mut c_blk, m, k, n);
        prop_assert_eq!(c_simd, c_blk);

        let bt = fill(&mut rng, n * k);
        let mut c_simd = vec![0.0f32; m * n];
        let mut c_blk = vec![0.0f32; m * n];
        simd::matmul_transb(&a, &bt, &mut c_simd, m, k, n);
        blocked::matmul_transb(&a, &bt, &mut c_blk, m, k, n);
        prop_assert_eq!(c_simd, c_blk);

        let (p, q) = (k, n);
        let a2 = fill(&mut rng, m * p);
        let b2 = fill(&mut rng, m * q);
        let init = fill(&mut rng, p * q);
        let mut acc_simd = init.clone();
        let mut acc_blk = init;
        simd::matmul_transa_acc(&a2, &b2, &mut acc_simd, m, p, q);
        blocked::matmul_transa_acc(&a2, &b2, &mut acc_blk, m, p, q);
        prop_assert_eq!(acc_simd, acc_blk);
    }

    /// SIMD element-wise ops: each lane is an independent per-element
    /// chain, so exact equality with the blocked tier is required.
    #[test]
    fn simd_elementwise_ops_bitwise_vs_blocked(seed in 0u64..10_000, len in 1usize..400, alpha in -3.0f32..3.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = fill(&mut rng, len);
        let y0 = fill(&mut rng, len);

        let mut y_simd = y0.clone();
        let mut y_blk = y0.clone();
        simd::axpy(&mut y_simd, alpha, &x);
        blocked::axpy(&mut y_blk, alpha, &x);
        prop_assert_eq!(&y_simd, &y_blk);

        simd::scale(&mut y_simd, alpha);
        blocked::scale(&mut y_blk, alpha);
        prop_assert_eq!(&y_simd, &y_blk);

        let acc0: Vec<f64> = y0.iter().map(|&v| v as f64).collect();
        let mut a_simd = acc0.clone();
        let mut a_blk = acc0;
        simd::acc_add(&mut a_simd, &x);
        blocked::acc_add(&mut a_blk, &x);
        prop_assert_eq!(&a_simd, &a_blk);
        simd::acc_scaled(&mut a_simd, &x, alpha as f64);
        blocked::acc_scaled(&mut a_blk, &x, alpha as f64);
        prop_assert_eq!(&a_simd, &a_blk);
        simd::acc_scaled_f32(&mut a_simd, &x, alpha);
        blocked::acc_scaled_f32(&mut a_blk, &x, alpha);
        prop_assert_eq!(a_simd, a_blk);
    }

    /// SIMD `f64` reductions are bitwise identical to the blocked tier
    /// (lane `i` *is* chain `i`; same fixed combine tree) — a stronger
    /// statement than the 1e-12 policy against the reference.
    #[test]
    fn simd_f64_reductions_bitwise_vs_blocked(seed in 0u64..10_000, len in 1usize..600) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, len);
        let b = fill(&mut rng, len);
        prop_assert_eq!(simd::dot(&a, &b).to_bits(), blocked::dot(&a, &b).to_bits());
        prop_assert_eq!(simd::sq_l2_norm(&a).to_bits(), blocked::sq_l2_norm(&a).to_bits());
        prop_assert_eq!(
            simd::sq_l2_distance(&a, &b).to_bits(),
            blocked::sq_l2_distance(&a, &b).to_bits()
        );
    }

    /// SIMD pairwise distances (full matrix and the row-sharded Krum entry
    /// point) are bitwise identical to the blocked tier.
    #[test]
    fn simd_pairwise_bitwise_vs_blocked(seed in 0u64..10_000, n in 1usize..8, dim in 1usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vs: Vec<Vec<f32>> = (0..n).map(|_| fill(&mut rng, dim)).collect();
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let d_simd = simd::pairwise_sq_distances(&refs);
        let d_blk = blocked::pairwise_sq_distances(&refs);
        for (x, y) in d_simd.iter().zip(&d_blk) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let mut row = vec![0.0f64; n];
        for i in 0..n {
            simd::pairwise_sq_distances_row_into(&refs, i, &mut row);
            for j in 0..n {
                prop_assert_eq!(row[j].to_bits(), d_blk[i * n + j].to_bits());
            }
        }
    }

    /// SIMD softmax paths (vectorized normalizing divide and 1/n scale,
    /// scalar max/exp/sum) are bitwise identical to the blocked tier, and
    /// the delegated order statistics trivially so.
    #[test]
    fn simd_softmax_and_order_stats_bitwise_vs_blocked(seed in 0u64..10_000, n in 1usize..16, k in 2usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = fill(&mut rng, n * k);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..k)).collect();

        let mut s_simd = logits.clone();
        let mut s_blk = logits.clone();
        simd::softmax_rows(&mut s_simd, n, k);
        blocked::softmax_rows(&mut s_blk, n, k);
        prop_assert_eq!(s_simd, s_blk);

        let mut g_simd = vec![0.0f32; n * k];
        let mut g_blk = vec![0.0f32; n * k];
        let (l_simd, c_simd) = simd::softmax_xent(&logits, &labels, n, k, &mut g_simd);
        let (l_blk, c_blk) = blocked::softmax_xent(&logits, &labels, n, k, &mut g_blk);
        prop_assert_eq!(g_simd, g_blk);
        prop_assert_eq!(l_simd.to_bits(), l_blk.to_bits());
        prop_assert_eq!(c_simd, c_blk);

        let vals = fill(&mut rng, n * k);
        let mut b_simd = vals.clone();
        let mut b_blk = vals.clone();
        prop_assert_eq!(
            simd::trimmed_mean_inplace(&mut b_simd, (n * k - 1) / 4),
            blocked::trimmed_mean_inplace(&mut b_blk, (n * k - 1) / 4)
        );
        let mut b_simd = vals.clone();
        let mut b_blk = vals;
        prop_assert_eq!(simd::median_inplace(&mut b_simd), blocked::median_inplace(&mut b_blk));
    }

    /// Single-row distance kernel (the row-sharded Krum path): each row
    /// must be bitwise identical to the corresponding row of the full
    /// matrix, in both implementations — the kernel-layer statement of the
    /// shard-boundary determinism rule.
    #[test]
    fn pairwise_row_matches_full_matrix_bitwise(seed in 0u64..10_000, n in 1usize..8, dim in 1usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vs: Vec<Vec<f32>> = (0..n).map(|_| fill(&mut rng, dim)).collect();
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let mut row = vec![0.0f64; n];
        for (imp, full) in [
            ("blocked", blocked::pairwise_sq_distances(&refs)),
            ("reference", reference::pairwise_sq_distances(&refs)),
        ] {
            for i in 0..n {
                match imp {
                    "blocked" => blocked::pairwise_sq_distances_row_into(&refs, i, &mut row),
                    _ => reference::pairwise_sq_distances_row_into(&refs, i, &mut row),
                }
                for j in 0..n {
                    prop_assert_eq!(
                        row[j].to_bits(),
                        full[i * n + j].to_bits(),
                        "{} row {} col {}", imp, i, j
                    );
                }
            }
        }
    }
}
