//! Backdoor forensics: apply the classical inference-phase defenses (STRIP,
//! Neural Cleanse, Fine-Pruning) to Trojaned models and see why the paper's
//! WaNet trigger slips through while a patch trigger is caught.
//!
//! ```bash
//! cargo run --release --example backdoor_forensics
//! ```

use collapois::core::trojan::{train_trojan, TrojanConfig};
use collapois::data::poison::stamp_only;
use collapois::data::synthetic::{SyntheticImage, SyntheticImageConfig};
use collapois::data::trigger::{PatchTrigger, Trigger, WaNetTrigger};
use collapois::defense::fine_pruning::fine_prune;
use collapois::defense::neural_cleanse::{neural_cleanse, CleanseConfig};
use collapois::defense::strip::{strip_screen, StripConfig};
use collapois::nn::zoo::ModelSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIDE: usize = 12;

fn main() {
    let clean = SyntheticImage::new(SyntheticImageConfig {
        side: SIDE,
        classes: 4,
        samples: 400,
        noise: 0.05,
        max_shift: 1,
        seed: 7,
    })
    .generate();
    let spec = ModelSpec::mlp(SIDE * SIDE, &[48], 4);

    let triggers: Vec<(&str, Box<dyn Trigger>)> = vec![
        (
            "WaNet warp",
            Box::new(WaNetTrigger::new(SIDE, 4, 3.0, 0x7716)),
        ),
        ("BadNets patch", Box::new(PatchTrigger::badnets(SIDE))),
    ];
    for (name, trigger) in &triggers {
        println!("\n=== Trojaned model with the {name} trigger ===");
        let trained = train_trojan(&spec, &clean, trigger.as_ref(), &TrojanConfig::default());
        let mut model = spec.build(&mut StdRng::seed_from_u64(0));
        model.set_params(&trained.params);
        println!(
            "clean accuracy {:.1}%, trigger success {:.1}%",
            100.0 * trained.clean_accuracy,
            100.0 * trained.trigger_success
        );

        // STRIP.
        let mut rng = StdRng::seed_from_u64(1);
        let suspects = stamp_only(
            &clean.subset(&(0..30).collect::<Vec<_>>()),
            trigger.as_ref(),
        );
        let strip = strip_screen(
            &mut rng,
            &mut model,
            &suspects,
            &clean,
            &StripConfig::default(),
        );
        println!(
            "STRIP: flags {:.1}% of triggered inputs (threshold entropy {:.3})",
            100.0 * strip.detection_rate(),
            strip.threshold
        );

        // Neural Cleanse.
        let report = neural_cleanse(&mut model, &clean, &CleanseConfig::default());
        for t in &report.triggers {
            println!(
                "Neural Cleanse class {}: mask l1 {:.2}, flip rate {:.0}%, anomaly {:.2}{}",
                t.class,
                t.mask_l1,
                100.0 * t.flip_rate,
                report.anomaly_index[t.class],
                if report.flagged_classes.contains(&t.class) {
                    "  <-- FLAGGED"
                } else {
                    ""
                }
            );
        }

        // Fine-Pruning.
        let mut pruned = spec.build(&mut StdRng::seed_from_u64(0));
        pruned.set_params(&trained.params);
        let _ = fine_prune(&mut pruned, &spec, &clean, 0.3);
        let stamped = stamp_only(&clean, trigger.as_ref());
        let (x, _) = stamped.as_batch();
        let sr = pruned.predict(&x).iter().filter(|&&p| p == 0).count() as f64 / clean.len() as f64;
        println!(
            "Fine-Pruning (30% of units): attack SR afterwards {:.1}%",
            100.0 * sr
        );
    }
    println!(
        "\nReading: the localized patch is visible to all three defenses; the smooth,\n\
         input-dependent warp presents neither a low-entropy STRIP signature nor a\n\
         small reconstructable (mask, pattern) — the paper's SS II-B evasion claim."
    );
}
