//! Defense shootout: CollaPois against every robust aggregation rule in the
//! workspace, printing the utility-vs-robustness trade-off the paper's
//! Discussion section highlights (DP/NormBound don't protect; Krum/RLR cost
//! too much utility).
//!
//! ```bash
//! cargo run --release --example defense_shootout
//! ```

use collapois::core::scenario::{AttackKind, DefenseKind, Scenario, ScenarioConfig};

fn main() {
    // Clean baseline for the utility reference.
    let mut clean_cfg = ScenarioConfig::quick_image(0.1, 0.0);
    clean_cfg.attack = AttackKind::None;
    clean_cfg.rounds = 20;
    clean_cfg.eval_every = 20;
    let clean_ac = Scenario::new(clean_cfg).run().final_round().benign_accuracy;
    println!(
        "Clean-run benign AC (no attack, FedAvg): {:.2}%\n",
        100.0 * clean_ac
    );

    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "defense", "benign AC", "attack SR", "AC drop"
    );
    for &defense in DefenseKind::all() {
        let mut cfg = ScenarioConfig::quick_image(0.1, 0.01);
        cfg.attack = AttackKind::CollaPois;
        cfg.defense = defense;
        cfg.rounds = 20;
        cfg.eval_every = 20;
        let report = Scenario::new(cfg).run();
        let last = report.final_round();
        println!(
            "{:<14} {:>9.2}% {:>9.2}% {:>11.2}%",
            defense.name(),
            100.0 * last.benign_accuracy,
            100.0 * last.attack_success_rate,
            100.0 * (clean_ac - last.benign_accuracy)
        );
    }
    println!(
        "\nReading: an effective defense would show low attack SR *and* low AC drop —\n\
         the paper's finding is that no row achieves both under non-IID data."
    );
}
