//! Client-level risk profiling: which clients get backdoored and why.
//!
//! Reproduces the paper's client-level analysis (Figs. 11 and 12): ranks
//! benign clients by the Eq. 8 infection score, groups them into risk
//! clusters and correlates each cluster's Attack SR with the Eq. 9
//! cumulative-label-distribution cosine to the attacker's auxiliary data.
//!
//! ```bash
//! cargo run --release --example client_risk_profile
//! ```

use collapois::core::scenario::{AttackKind, Scenario, ScenarioConfig};

fn main() {
    let mut cfg = ScenarioConfig::quick_image(0.1, 0.05);
    cfg.attack = AttackKind::CollaPois;
    cfg.rounds = 30;
    cfg.eval_every = 30;
    println!(
        "Profiling {} clients (alpha={}, {} compromised)...\n",
        cfg.num_clients,
        cfg.alpha,
        cfg.num_compromised()
    );
    let report = Scenario::new(cfg).run();

    // Cluster view (Fig. 12).
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>10}",
        "cluster", "clients", "CS_k (Eq.9)", "attack SR", "benign AC"
    );
    for c in &report.clusters {
        println!(
            "{:<12} {:>8} {:>12.4} {:>9.2}% {:>9.2}%",
            c.label,
            c.clients.len(),
            c.label_cosine,
            100.0 * c.attack_sr,
            100.0 * c.benign_ac
        );
    }

    // Per-client view (Fig. 11): the ten most and least affected clients.
    let mut sorted = report.clients.clone();
    sorted.sort_by(|a, b| b.score().partial_cmp(&a.score()).expect("finite scores"));
    println!("\nMost affected clients (Eq. 8 score ranking):");
    println!("{:<10} {:>10} {:>10}", "client", "benign AC", "attack SR");
    for m in sorted.iter().take(5) {
        println!(
            "{:<10} {:>9.2}% {:>9.2}%",
            m.client_id,
            100.0 * m.benign_ac,
            100.0 * m.attack_sr
        );
    }
    println!("Least affected clients:");
    for m in sorted.iter().rev().take(5) {
        println!(
            "{:<10} {:>9.2}% {:>9.2}%",
            m.client_id,
            100.0 * m.benign_ac,
            100.0 * m.attack_sr
        );
    }
    println!(
        "\nReading: clients whose label mix is closest to the compromised clients'\n\
         auxiliary data (higher CS_k) carry the highest backdoor risk."
    );
}
