//! Quickstart: run CollaPois end to end on the FEMNIST-sim dataset and print
//! the attack's headline metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use collapois::core::scenario::{AttackKind, Scenario, ScenarioConfig};

fn main() {
    // One experiment cell: Dirichlet alpha = 0.1 (fairly non-IID), 1 % of
    // clients compromised, FedAvg, no defense.
    let mut cfg = ScenarioConfig::quick_image(0.1, 0.01);
    cfg.attack = AttackKind::CollaPois;
    cfg.rounds = 30;
    cfg.eval_every = 10;

    println!(
        "Running CollaPois: {} clients, alpha={}, {} compromised, {} rounds...",
        cfg.num_clients,
        cfg.alpha,
        cfg.num_compromised(),
        cfg.rounds
    );
    let report = Scenario::new(cfg).run();

    let x = report
        .trojan
        .as_ref()
        .expect("CollaPois trains a Trojaned model");
    println!(
        "\nTrojaned model X: clean accuracy {:.1}%, trigger success {:.1}%",
        100.0 * x.clean_accuracy,
        100.0 * x.trigger_success
    );
    println!("\nround  benign AC  attack SR");
    for r in &report.rounds {
        println!(
            "{:>5}  {:>8.2}%  {:>8.2}%",
            r.round,
            100.0 * r.benign_accuracy,
            100.0 * r.attack_success_rate
        );
    }
    let top = report.top_k(25.0);
    println!(
        "\nTop-25% most affected clients: benign AC {:.2}%, attack SR {:.2}%",
        100.0 * top.benign_ac,
        100.0 * top.attack_sr
    );
    println!(
        "Compromised clients: {:?} (of {})",
        report.compromised, report.config.num_clients
    );
}
