//! Trigger gallery: renders every trigger family and reports perturbation
//! sizes and standalone learnability (can a centrally trained model learn
//! each trigger as a backdoor?).
//!
//! ```bash
//! cargo run --release --example trigger_gallery
//! ```

use collapois::core::trojan::{train_trojan, TrojanConfig};
use collapois::data::synthetic::{SyntheticImage, SyntheticImageConfig};
use collapois::data::trigger::{
    l2_perturbation, linf_perturbation, DbaTrigger, PatchTrigger, Trigger, WaNetTrigger,
};
use collapois::nn::zoo::ModelSpec;

const SIDE: usize = 12;

fn ascii(image: &[f32]) -> String {
    let ramp: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for y in 0..SIDE {
        for x in 0..SIDE {
            let v = image[y * SIDE + x].clamp(0.0, 1.0);
            let idx = ((v * (ramp.len() - 1) as f32).round()) as usize;
            out.push(ramp[idx] as char);
            out.push(ramp[idx] as char);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let aux = SyntheticImage::new(SyntheticImageConfig {
        side: SIDE,
        classes: 6,
        samples: 360,
        noise: 0.05,
        max_shift: 1,
        seed: 21,
    })
    .generate();
    let clean = aux.features_of(0).to_vec();
    println!("Clean sample:\n{}", ascii(&clean));

    let triggers: Vec<(&str, Box<dyn Trigger>)> = vec![
        (
            "wanet (warping)",
            Box::new(WaNetTrigger::new(SIDE, 4, 3.0, 99)),
        ),
        ("badnets (patch)", Box::new(PatchTrigger::badnets(SIDE))),
        ("dba (composed)", Box::new(DbaTrigger::new(SIDE, 2, 1.0))),
    ];
    let spec = ModelSpec::mlp(SIDE * SIDE, &[48], 6);
    let trojan_cfg = TrojanConfig {
        epochs: 40,
        ..Default::default()
    };

    for (name, trigger) in &triggers {
        let mut stamped = clean.clone();
        trigger.apply(&mut stamped);
        println!("--- {name} ---");
        println!("{}", ascii(&stamped));
        let x = train_trojan(&spec, &aux, trigger.as_ref(), &trojan_cfg);
        println!(
            "linf perturbation: {:.4}   l2: {:.4}   trojan clean-acc: {:.1}%   trigger-success: {:.1}%\n",
            linf_perturbation(trigger.as_ref(), &clean),
            l2_perturbation(trigger.as_ref(), &clean),
            100.0 * x.clean_accuracy,
            100.0 * x.trigger_success
        );
    }
    println!(
        "Reading: the WaNet warp perturbs each pixel far less than a visible patch\n\
         while remaining fully learnable as a backdoor (the paper's Fig. 14 point)."
    );
}
